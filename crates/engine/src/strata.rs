//! Stratum assignment and reachability over the predicate dependency graph.
//!
//! [`crate::analysis::DependencyGraph`] detects recursion (SCCs) and answers
//! the boolean `is_stratified()`; this module turns that structure into the
//! quantities the rest of the engine spends:
//!
//! * **per-predicate stratum numbers** from the SCC condensation — the
//!   stratum of a component is the maximum over its dependencies of their
//!   stratum, plus one for every negative/event edge crossed;
//! * **per-rule stratum membership** (a rule lives in its head's stratum);
//! * **failure localization**: when stratification fails, the exact
//!   negative/event edges inside recursive components, attributed to the
//!   rules (with source spans) that contribute them — what lint `PARK008`
//!   reports and `PARK006` points at;
//! * **`affected(U)`**: the closure of predicates whose extension a change
//!   to the update set's predicates can reach — the predicates whose strata
//!   the incremental engine must recompute (`docs/incremental.md` §5).
//!
//! PARK's semantics never *requires* stratification — unstratified programs
//! are legal and handled at run time — but the incrementality-safe fragment
//! ([`crate::incremental::certify_incremental`]) is carved along exactly
//! these lines: recursion through negation is what makes a mark depend on
//! the *step* at which it was derived, and therefore on history a warm
//! state cannot replay.

use crate::analysis::{DependencyGraph, EdgeKind};
use crate::compile::{CompiledLiteral, CompiledProgram, LitKind, RuleId};
use park_storage::PredId;
use park_syntax::Span;
use std::collections::{HashMap, HashSet};

/// A non-positive edge connecting two predicates of one recursive
/// component — the witness that a program is unstratified, attributed to
/// the rules that contribute it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffendingEdge {
    /// The head predicate of the contributing rules.
    pub from: PredId,
    /// The negated (or event) body predicate.
    pub to: PredId,
    /// Negative or event (positive edges never offend).
    pub kind: EdgeKind,
    /// The rules whose head is `from` and whose body holds the literal,
    /// with their source spans, in program order.
    pub rules: Vec<(RuleId, Span)>,
    /// The recursive component both endpoints belong to, sorted.
    pub component: Vec<PredId>,
}

/// The stratum analysis of one compiled program.
#[derive(Debug, Clone)]
pub struct Strata {
    graph: DependencyGraph,
    /// SCC condensation in reverse topological order: a component appears
    /// after every component it depends on.
    components: Vec<Vec<PredId>>,
    comp_of: HashMap<PredId, usize>,
    /// Stratum per component, same indexing as `components`.
    comp_stratum: Vec<u32>,
    offending: Vec<OffendingEdge>,
}

impl Strata {
    /// Analyze a compiled program.
    pub fn of(program: &CompiledProgram) -> Strata {
        Self::over(DependencyGraph::of(program), program)
    }

    /// Analyze with a pre-built dependency graph (must be the program's).
    pub fn over(graph: DependencyGraph, program: &CompiledProgram) -> Strata {
        let components = graph.sccs();
        let mut comp_of: HashMap<PredId, usize> = HashMap::new();
        for (i, comp) in components.iter().enumerate() {
            for &p in comp {
                comp_of.insert(p, i);
            }
        }
        // Tarjan emits dependencies before dependents (edges point
        // head → body), so one forward pass assigns strata bottom-up: a
        // component sits just above the highest dependency it crosses a
        // non-positive edge into, and no lower than any dependency.
        let mut comp_stratum = vec![0u32; components.len()];
        for (i, _) in components.iter().enumerate() {
            let mut stratum = 0u32;
            for &(f, t, k) in &graph.edges {
                let (cf, ct) = (comp_of[&f], comp_of[&t]);
                if cf != i || ct == i {
                    continue;
                }
                let step = u32::from(k != EdgeKind::Positive);
                stratum = stratum.max(comp_stratum[ct] + step);
            }
            comp_stratum[i] = stratum;
        }
        // Failure localization: every intra-component non-positive edge,
        // attributed to the contributing rules. Update rules (`tx` heads)
        // are body-less and contribute no edges.
        let mut offending: Vec<OffendingEdge> = Vec::new();
        let mut by_edge: HashMap<(PredId, PredId, EdgeKind), usize> = HashMap::new();
        for rule in program.rules() {
            let f = rule.head.pred;
            for lit in rule.body.iter() {
                let CompiledLiteral::Atom { kind, atom } = lit else {
                    continue;
                };
                let kind = match kind {
                    LitKind::Pos => continue,
                    LitKind::Neg => EdgeKind::Negative,
                    LitKind::Event(_) => EdgeKind::Event,
                };
                let t = atom.pred;
                if comp_of.get(&f) != comp_of.get(&t) {
                    continue;
                }
                let entry = (f, t, kind);
                let idx = *by_edge.entry(entry).or_insert_with(|| {
                    offending.push(OffendingEdge {
                        from: f,
                        to: t,
                        kind,
                        rules: Vec::new(),
                        component: components[comp_of[&f]].clone(),
                    });
                    offending.len() - 1
                });
                offending[idx].rules.push((rule.id, rule.source.span));
            }
        }
        offending.sort_by_key(|e| (e.from, e.to, e.kind));
        Strata {
            graph,
            components,
            comp_of,
            comp_stratum,
            offending,
        }
    }

    /// The SCC condensation, dependencies first; components sorted.
    pub fn components(&self) -> &[Vec<PredId>] {
        &self.components
    }

    /// The stratum of a predicate (`None` for predicates the program never
    /// mentions).
    pub fn stratum(&self, p: PredId) -> Option<u32> {
        self.comp_of.get(&p).map(|&c| self.comp_stratum[c])
    }

    /// The stratum of a component, by condensation index.
    pub fn component_stratum(&self, comp: usize) -> u32 {
        self.comp_stratum[comp]
    }

    /// The stratum a rule lives in: its head predicate's.
    pub fn rule_stratum(&self, program: &CompiledProgram, rule: RuleId) -> Option<u32> {
        self.stratum(program.rule(rule).head.pred)
    }

    /// Highest assigned stratum (0 for an empty program).
    pub fn max_stratum(&self) -> u32 {
        self.comp_stratum.iter().copied().max().unwrap_or(0)
    }

    /// Do two predicates share a recursive component?
    pub fn same_component(&self, a: PredId, b: PredId) -> bool {
        match (self.comp_of.get(&a), self.comp_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Stratifiability, with the same verdict as
    /// [`DependencyGraph::is_stratified`]: no offending edge.
    pub fn is_stratified(&self) -> bool {
        self.offending.is_empty()
    }

    /// The localized stratification failures (empty iff stratified),
    /// sorted by `(from, to, kind)`.
    pub fn offending_edges(&self) -> &[OffendingEdge] {
        &self.offending
    }

    /// The dependency graph the analysis was built over.
    pub fn graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// `affected(U)`: every predicate whose extension a change to `seeds`
    /// can reach — the seeds themselves plus all predicates that
    /// transitively depend on them (ancestors along head → body edges).
    /// Seed predicates the program never mentions are still affected
    /// (their own extension changes), they just reach nothing.
    pub fn affected(&self, seeds: impl IntoIterator<Item = PredId>) -> HashSet<PredId> {
        let mut out: HashSet<PredId> = seeds.into_iter().collect();
        // Fixpoint over the reversed edges; the graph is small (one node
        // per predicate), so the quadratic sweep is fine.
        loop {
            let mut grew = false;
            for &(f, t, _) in &self.graph.edges {
                if out.contains(&t) && out.insert(f) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        CompiledProgram::compile(Vocabulary::new(), &parse_program(src).unwrap()).unwrap()
    }

    fn pred(p: &CompiledProgram, name: &str) -> PredId {
        p.vocab().lookup_pred(name).unwrap()
    }

    #[test]
    fn positive_chains_stay_in_stratum_zero() {
        let p = compile("a(X) -> +b(X). b(X) -> +c(X). c(X), b(X) -> +d(X).");
        let s = Strata::of(&p);
        assert!(s.is_stratified());
        for name in ["a", "b", "c", "d"] {
            assert_eq!(s.stratum(pred(&p, name)), Some(0), "{name}");
        }
        assert_eq!(s.max_stratum(), 0);
    }

    #[test]
    fn negation_steps_the_stratum() {
        let p = compile("a(X), !b(X) -> +c(X). c(X), !d(X) -> +e(X).");
        let s = Strata::of(&p);
        assert!(s.is_stratified());
        assert_eq!(s.stratum(pred(&p, "a")), Some(0));
        assert_eq!(s.stratum(pred(&p, "b")), Some(0));
        assert_eq!(s.stratum(pred(&p, "c")), Some(1));
        // `e` only needs to sit strictly above `d` (stratum 0) and no
        // lower than `c` (stratum 1).
        assert_eq!(s.stratum(pred(&p, "e")), Some(1));
        assert_eq!(s.max_stratum(), 1);
    }

    #[test]
    fn recursive_component_shares_one_stratum() {
        let p = compile(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).
             tc(X, X), !edge(X, X) -> +odd(X).",
        );
        let s = Strata::of(&p);
        assert!(s.is_stratified());
        assert_eq!(s.stratum(pred(&p, "edge")), Some(0));
        assert_eq!(s.stratum(pred(&p, "tc")), Some(0));
        assert_eq!(s.stratum(pred(&p, "odd")), Some(1));
        // tc is alone in its (recursive) component.
        let tc = pred(&p, "tc");
        assert!(s.components().iter().any(|c| c == &vec![tc]));
    }

    #[test]
    fn win_move_cycle_is_localized_with_spans() {
        let p = compile("w: move(X, Y), !win(Y) -> +win(X).");
        let s = Strata::of(&p);
        assert!(!s.is_stratified());
        let off = s.offending_edges();
        assert_eq!(off.len(), 1);
        let win = pred(&p, "win");
        assert_eq!(off[0].from, win);
        assert_eq!(off[0].to, win);
        assert_eq!(off[0].kind, EdgeKind::Negative);
        assert_eq!(off[0].component, vec![win]);
        let [(rule, span)] = off[0].rules[..] else {
            panic!("one contributing rule expected: {:?}", off[0].rules);
        };
        assert_eq!(p.rule(rule).display_name(), "w");
        assert_eq!(span.line, 1);
        assert!(span.col > 0, "named rule has a real span: {span:?}");
    }

    #[test]
    fn mutual_recursion_through_events_is_offending() {
        let p = compile("a(X) -> +b(X). +b(X) -> +a(X).");
        let s = Strata::of(&p);
        assert!(!s.is_stratified());
        assert_eq!(s.offending_edges().len(), 1);
        let e = &s.offending_edges()[0];
        assert_eq!(e.kind, EdgeKind::Event);
        assert_eq!(e.component.len(), 2);
    }

    #[test]
    fn verdict_agrees_with_dependency_graph() {
        for src in [
            "move(X, Y), !win(Y) -> +win(X).",
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "a(X), !b(X) -> +c(X).",
            "a(X) -> +b(X). +b(X) -> +a(X).",
            "p(X), !q(X) -> +q2(X). q2(X) -> +q(X).",
        ] {
            let p = compile(src);
            let g = DependencyGraph::of(&p);
            assert_eq!(g.is_stratified(), Strata::of(&p).is_stratified(), "{src}");
        }
    }

    #[test]
    fn affected_is_the_ancestor_closure() {
        let p = compile(
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).
             r(X, X) -> +cyc(X). other(X) -> +island(X).",
        );
        let s = Strata::of(&p);
        let aff = s.affected([pred(&p, "e")]);
        for name in ["e", "r", "cyc"] {
            assert!(aff.contains(&pred(&p, name)), "{name}");
        }
        assert!(!aff.contains(&pred(&p, "other")));
        assert!(!aff.contains(&pred(&p, "island")));
        // A leaf-only change reaches nothing below it.
        let aff = s.affected([pred(&p, "cyc")]);
        assert_eq!(aff.len(), 1);
    }

    #[test]
    fn affected_keeps_unknown_seed_predicates() {
        let p = compile("a(X) -> +b(X).");
        let vocab = p.vocab();
        let ghost = vocab.pred("ghost", 1).unwrap();
        let s = Strata::of(&p);
        let aff = s.affected([ghost]);
        assert!(aff.contains(&ghost));
        assert_eq!(aff.len(), 1);
    }

    #[test]
    fn rule_stratum_is_the_heads() {
        let p = compile("base: a(X), !b(X) -> +c(X). top: c(X), !d(X) -> +e(X).");
        let s = Strata::of(&p);
        let base = p.rule_by_name("base").unwrap();
        let top = p.rule_by_name("top").unwrap();
        assert_eq!(s.rule_stratum(&p, base), Some(1));
        assert_eq!(s.rule_stratum(&p, top), Some(1));
    }
}
