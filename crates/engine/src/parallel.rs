//! Deterministic ordered-merge parallel executor.
//!
//! The evaluators ([`crate::gamma`], [`crate::seminaive`]) decompose one Γ
//! step into a fixed, sequentially-ordered list of independent *tasks* over
//! an immutable pre-step snapshot. This module runs those tasks on a small
//! pool of scoped threads, each task firing into its own buffer, and then
//! concatenates the buffers in task-index order. Because the task list is
//! exactly the order the sequential evaluator would have enumerated, the
//! merged [`FiredAction`] stream is byte-identical to the sequential one —
//! marks, conflict detection order, SELECT inputs, and traces do not change.
//!
//! Threads are spawned per call with [`std::thread::scope`]; no pool lives
//! beyond a Γ step, and nothing is spawned at all when parallelism is off
//! or there is at most one task.

use crate::gamma::{FiredAction, Scratch};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many step-0 chunks each worker thread should get, on average.
///
/// A little over-decomposition (2 chunks per thread) smooths out load
/// imbalance between chunks without fragmenting the probe windows enough
/// to matter.
pub(crate) const CHUNKS_PER_THREAD: usize = 2;

/// Run `run` over every task, in parallel on `threads` workers, and return
/// the task buffers concatenated in task-index order.
///
/// Each worker owns a [`Scratch`] that is reused across the tasks it pulls,
/// so per-grounding allocations are amortised exactly as in the sequential
/// path. Falls back to a plain sequential loop when the task count or the
/// thread count makes spawning pointless.
pub(crate) fn run_ordered<T, F>(tasks: &[T], threads: usize, run: F) -> Vec<FiredAction>
where
    T: Sync,
    F: Fn(&T, &mut Scratch, &mut Vec<FiredAction>) + Sync,
{
    let workers = threads.min(tasks.len());
    if workers <= 1 {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for task in tasks {
            run(task, &mut scratch, &mut out);
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<FiredAction>> = Vec::with_capacity(tasks.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let run = &run;
            handles.push(scope.spawn(move || {
                let mut scratch = Scratch::new();
                let mut done: Vec<(usize, Vec<FiredAction>)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= tasks.len() {
                        break;
                    }
                    let mut buf = Vec::new();
                    run(&tasks[idx], &mut scratch, &mut buf);
                    done.push((idx, buf));
                }
                done
            }));
        }
        let mut collected: Vec<(usize, Vec<FiredAction>)> = Vec::with_capacity(tasks.len());
        for handle in handles {
            collected.extend(handle.join().expect("evaluation worker panicked"));
        }
        collected.sort_unstable_by_key(|(idx, _)| *idx);
        buffers.extend(collected.into_iter().map(|(_, buf)| buf));
    });
    buffers.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Value;

    fn action(rule: usize, tag: i64) -> FiredAction {
        use crate::compile::RuleId;
        use crate::grounding::Grounding;
        use park_syntax::Sign;
        FiredAction {
            grounding: Grounding {
                rule: RuleId(rule as u32),
                subst: vec![Value::Int(tag)].into_boxed_slice(),
            },
            sign: Sign::Insert,
            pred: park_storage::PredId(0),
            tuple: [Value::Int(tag)].into_iter().collect(),
        }
    }

    #[test]
    fn ordered_merge_matches_sequential_concatenation() {
        // Tasks emit differing numbers of actions; the merge must preserve
        // the task order regardless of which worker ran which task.
        let tasks: Vec<usize> = (0..37).collect();
        let run = |t: &usize, _s: &mut Scratch, out: &mut Vec<FiredAction>| {
            for k in 0..(*t % 5) {
                out.push(action(*t, (*t * 10 + k) as i64));
            }
        };
        let mut expected = Vec::new();
        let mut scratch = Scratch::new();
        for t in &tasks {
            run(t, &mut scratch, &mut expected);
        }
        for threads in [1, 2, 4, 8] {
            let got = run_ordered(&tasks, threads, run);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_task_lists() {
        let run = |t: &usize, _s: &mut Scratch, out: &mut Vec<FiredAction>| {
            out.push(action(*t, *t as i64));
        };
        assert!(run_ordered(&[], 4, run).is_empty());
        let one = run_ordered(&[7usize], 4, run);
        assert_eq!(one.len(), 1);
    }
}
