//! Deterministic ordered-merge parallel executor.
//!
//! The evaluators ([`crate::gamma`], [`crate::seminaive`]) decompose one Γ
//! step into a fixed, sequentially-ordered list of independent *shard
//! tasks* over an immutable pre-step snapshot — each task owns the rules
//! (or semi-naive units) that enumerate one predicate's relation shard.
//! This module runs those tasks on a small pool of scoped threads, each
//! task firing into its own buffer, and then concatenates the buffers in
//! task-index order. The evaluators tag their output with unit indices and
//! re-merge per unit, so the final [`FiredAction`] stream is byte-identical
//! to the sequential one — marks, conflict detection order, SELECT inputs,
//! and traces do not change.
//!
//! Threads are spawned per call with [`std::thread::scope`]; no pool lives
//! beyond a Γ step, and nothing is spawned at all when parallelism is off
//! or there is at most one task.
//!
//! The *pool size* (`workers`) is decoupled from the *task decomposition*:
//! the shard decomposition depends only on the program, while the fixpoint
//! loop clamps the number of threads actually spawned to
//! [`host_parallelism`]. Oversubscribing a host (e.g. 4 workers on 1 core)
//! only adds scheduling overhead — `BENCH_eval.json` measured threads=4 at
//! 1.45× *slower* than threads=1 on a 1-core host — and since the merge
//! order is deterministic, shrinking the pool cannot change any output.

use crate::gamma::{FiredAction, Scratch};
use crate::metrics::TaskSpan;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The host's available parallelism, cached after the first query.
/// Falls back to 1 when the host refuses to say.
pub(crate) fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// How many firings a task-output item represents, for [`TaskSpan`]
/// accounting. A bare action counts 1; a tagged per-unit buffer counts its
/// length.
pub(crate) trait SpanWeight {
    /// Number of fired actions this item carries.
    fn weight(&self) -> usize;
}

impl SpanWeight for FiredAction {
    fn weight(&self) -> usize {
        1
    }
}

impl SpanWeight for (usize, Vec<FiredAction>) {
    fn weight(&self) -> usize {
        self.1.len()
    }
}

/// Run `run` over every task, in parallel on up to `workers` threads, and
/// return the task buffers concatenated in task-index order. When `spans`
/// is supplied, one [`TaskSpan`] per task (fired count + wall-clock nanos)
/// is appended to it, in task-index order.
///
/// Each worker owns a [`Scratch`] that is reused across the tasks it pulls,
/// so per-grounding allocations are amortised exactly as in the sequential
/// path. Falls back to a plain sequential loop when the task count or the
/// worker count makes spawning pointless.
pub(crate) fn run_ordered<T, R, F>(
    tasks: &[T],
    workers: usize,
    run: F,
    spans: Option<&mut Vec<TaskSpan>>,
) -> Vec<R>
where
    T: Sync,
    R: Send + SpanWeight,
    F: Fn(&T, &mut Scratch, &mut Vec<R>) + Sync,
{
    let timed = spans.is_some();
    let workers = workers.min(tasks.len());
    if workers <= 1 {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        if let Some(spans) = spans {
            for (idx, task) in tasks.iter().enumerate() {
                let before = out.len();
                let started = Instant::now();
                run(task, &mut scratch, &mut out);
                spans.push(TaskSpan {
                    index: idx,
                    fired: out[before..].iter().map(SpanWeight::weight).sum(),
                    nanos: started.elapsed().as_nanos() as u64,
                });
            }
        } else {
            for task in tasks {
                run(task, &mut scratch, &mut out);
            }
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<R>> = Vec::with_capacity(tasks.len());
    let mut collected: Vec<(usize, Vec<R>, u64)> = Vec::with_capacity(tasks.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let run = &run;
            handles.push(scope.spawn(move || {
                let mut scratch = Scratch::new();
                let mut done: Vec<(usize, Vec<R>, u64)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= tasks.len() {
                        break;
                    }
                    let mut buf = Vec::new();
                    let started = timed.then(Instant::now);
                    run(&tasks[idx], &mut scratch, &mut buf);
                    let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    done.push((idx, buf, nanos));
                }
                done
            }));
        }
        for handle in handles {
            collected.extend(handle.join().expect("evaluation worker panicked"));
        }
        collected.sort_unstable_by_key(|(idx, ..)| *idx);
    });
    if let Some(spans) = spans {
        spans.extend(collected.iter().map(|(idx, buf, nanos)| TaskSpan {
            index: *idx,
            fired: buf.iter().map(SpanWeight::weight).sum(),
            nanos: *nanos,
        }));
    }
    buffers.extend(collected.into_iter().map(|(_, buf, _)| buf));
    buffers.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Code;

    fn action(rule: usize, tag: i64) -> FiredAction {
        use crate::compile::RuleId;
        use crate::grounding::Grounding;
        use park_syntax::Sign;
        let c = Code::from_small_int(tag).expect("test tags are small");
        FiredAction {
            grounding: Grounding {
                rule: RuleId(rule as u32),
                subst: Box::from([c]),
            },
            sign: Sign::Insert,
            pred: park_storage::PredId(0),
            tuple: Box::from([c]),
        }
    }

    #[test]
    fn ordered_merge_matches_sequential_concatenation() {
        // Tasks emit differing numbers of actions; the merge must preserve
        // the task order regardless of which worker ran which task.
        let tasks: Vec<usize> = (0..37).collect();
        let run = |t: &usize, _s: &mut Scratch, out: &mut Vec<FiredAction>| {
            for k in 0..(*t % 5) {
                out.push(action(*t, (*t * 10 + k) as i64));
            }
        };
        let mut expected = Vec::new();
        let mut scratch = Scratch::new();
        for t in &tasks {
            run(t, &mut scratch, &mut expected);
        }
        for threads in [1, 2, 4, 8] {
            let got = run_ordered(&tasks, threads, run, None);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_task_lists() {
        let run = |t: &usize, _s: &mut Scratch, out: &mut Vec<FiredAction>| {
            out.push(action(*t, *t as i64));
        };
        assert!(run_ordered(&[], 4, run, None).is_empty());
        let one = run_ordered(&[7usize], 4, run, None);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn spans_cover_every_task_in_merge_order() {
        let tasks: Vec<usize> = (0..9).collect();
        let run = |t: &usize, _s: &mut Scratch, out: &mut Vec<FiredAction>| {
            for k in 0..(*t % 3) {
                out.push(action(*t, (*t * 10 + k) as i64));
            }
        };
        for threads in [1, 4] {
            let mut spans = Vec::new();
            let got = run_ordered(&tasks, threads, run, Some(&mut spans));
            assert_eq!(spans.len(), tasks.len(), "threads={threads}");
            for (i, span) in spans.iter().enumerate() {
                assert_eq!(span.index, i);
                assert_eq!(span.fired, i % 3);
            }
            assert_eq!(got.len(), spans.iter().map(|s| s.fired).sum::<usize>());
        }
    }

    #[test]
    fn tagged_unit_buffers_weigh_their_contents() {
        // Shard tasks emit (unit, buffer) pairs; spans must count firings,
        // not units.
        let tasks: Vec<usize> = (0..4).collect();
        let run = |t: &usize, _s: &mut Scratch, out: &mut Vec<(usize, Vec<FiredAction>)>| {
            let buf: Vec<FiredAction> = (0..*t as i64).map(|k| action(*t, k)).collect();
            out.push((*t, buf));
        };
        for threads in [1, 3] {
            let mut spans = Vec::new();
            let got = run_ordered(&tasks, threads, run, Some(&mut spans));
            assert_eq!(got.len(), tasks.len());
            for (i, span) in spans.iter().enumerate() {
                assert_eq!(span.fired, i, "threads={threads}");
            }
        }
    }

    #[test]
    fn host_parallelism_is_at_least_one() {
        assert!(host_parallelism() >= 1);
    }
}
