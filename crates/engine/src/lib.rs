//! # park-engine
//!
//! The PARK semantics for active rules (*The PARK Semantics for Active
//! Rules*, Gottlob, Moerkotte, Subrahmanian; EDBT 1996): an inflationary
//! fixpoint engine for event–condition–action rule sets with pluggable
//! conflict resolution.
//!
//! The semantics decomposes exactly as the paper prescribes:
//!
//! ```text
//! ActiveDBSemantics = DeclarativeSemantics + ConflictResolutionPolicy
//! ```
//!
//! The declarative half is the inflationary consequence operator
//! [`gamma::fire_all`] over [`IInterpretation`]s; the policy half is any
//! [`ConflictResolver`] (the paper's `SELECT` oracle). [`Engine::run`]
//! iterates the transition operator Δ to its fixpoint ω and applies
//! [`IInterpretation::incorp`]:
//!
//! ```
//! use park_engine::{Engine, Inertia};
//! use park_storage::{FactStore, Vocabulary};
//! use park_syntax::parse_program;
//! use std::sync::Arc;
//!
//! let vocab = Vocabulary::new();
//! let program = parse_program("p -> +q. p -> -a. q -> +a.").unwrap();
//! let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
//! let db = FactStore::from_source(vocab, "p.").unwrap();
//! let out = engine.park(&db, &mut Inertia).unwrap();
//! assert_eq!(out.database.to_string(), "{p, q}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bistructure;
pub mod bytecode;
pub mod compile;
pub mod conflict;
pub mod error;
pub mod fixpoint;
pub mod gamma;
pub mod grounding;
pub mod incremental;
pub mod interp;
pub mod lower;
pub mod metrics;
pub mod options;
mod parallel;
pub mod query;
pub mod refine;
pub mod replay;
pub mod seminaive;
pub mod stats;
pub mod strata;
pub mod trace;
pub mod validity;

pub use analysis::{
    conflict_pairs, confluence_probe, ConflictPair, Confluence, DependencyGraph, EdgeKind,
    ProgramReport,
};
pub use bistructure::BiStructure;
pub use bytecode::{fire_all_lowered, fire_new_lowered};
pub use compile::{
    CompiledAtom, CompiledLiteral, CompiledProgram, CompiledRule, LitKind, RuleId, TermSlot,
};
pub use conflict::{
    collect_conflicts, Conflict, ConflictResolver, Inertia, Provenance, Resolution, SelectContext,
};
pub use error::{EngineError, EngineResult};
pub use fixpoint::{Engine, ParkOutcome};
pub use gamma::{fire_all, fire_all_par, FiredAction};
pub use grounding::{BlockedSet, Grounding};
pub use incremental::{
    certify_incremental, exclusions_with, incremental_exclusions, IncrementalBlocker,
    IncrementalExclusion, IncrementalReport, WarmState,
};
pub use interp::IInterpretation;
pub use lower::{lower, LoweredProgram};
pub use metrics::{
    FinishEvent, JsonMetrics, MetricsSink, NoopMetrics, ReplayEvent, RestartEvent, StepEvent,
    StepOutcome, StorageCounters, TaskSpan,
};
pub use options::{EngineOptions, EvaluationMode, ResolutionScope};
pub use query::Query;
pub use refine::{
    always_blocked_rules, certify_conflict_free, never_fire_rules, refine_conflicts,
    unreachable_event_rules, AnalysisVariant, ConflictCertificate, ConstPolicy, ExclusionReason,
    RefinedConflicts,
};
pub use replay::{Replayer, StepLog};
pub use seminaive::{fire_new, fire_new_par, ZoneLens};
pub use stats::{RunStats, StatCounters};
pub use strata::{OffendingEdge, Strata};
pub use trace::{Trace, TraceEvent};
pub use validity::{valid_event, valid_neg, valid_pos, MarkZone};
