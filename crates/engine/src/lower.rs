//! Lowering [`CompiledRule`]s into [`crate::bytecode`] programs.
//!
//! `lower` runs once per engine run (before the fixpoint starts) and turns
//! each rule's body into a flat op sequence with every binding decision
//! made ahead of time:
//!
//! - **Join order** is chosen by a greedy cost model over the *base*
//!   shard cardinalities of the database the run starts from (the only
//!   stats that exist before evaluation begins). Filters (negations,
//!   guards) are scheduled as early as their variables allow, exactly as
//!   in [`crate::compile`]'s planner; binding literals are ordered by
//!   estimated enumeration cost instead of raw bound-position count.
//! - **Index selection** is explicit per op: the base zone of a probed
//!   literal is indexed only when the cost model expects the index to pay
//!   for itself (`INDEX_MIN_ROWS`); the `I⁺`/`I⁻` zones, which start
//!   empty and grow monotonically during a run, are always probed through
//!   their lazily built indexes.
//! - **Boundness is static**: every variable's first binding op is known
//!   at lowering time, so the executor's registers need no `Option`
//!   wrapper, no occurs-checks, and no undo bookkeeping on backtracking.
//!
//! Because the cost model only consults the immutable starting database,
//! lowering is deterministic: the same program and database produce the
//! same lowered ops regardless of thread count, warm/cold restarts, or
//! which harness configuration is running.

use crate::bytecode::{
    AccessOp, AccessZone, CheckSrc, ColBind, ColCheck, DeltaKind, KeySrc, LoweredRule, Op,
};
use crate::compile::{
    CompiledLiteral, CompiledProgram, CompiledRule, IndexRequest, LitKind, TermSlot,
};
use crate::validity::MarkZone;
use park_storage::{ColumnMask, FactStore, PredId};
use park_syntax::Sign;
use std::collections::HashMap;

/// Base shards smaller than this are scanned rather than probed through a
/// hash index: at these sizes the per-probe hashing beats nothing.
pub(crate) const INDEX_MIN_ROWS: usize = 16;

/// Assumed cardinality of a predicate with an empty base shard (its rows,
/// if any, will be derived into `I⁺` during the run — unknowable before
/// evaluation, but rarely free).
const DERIVED_DEFAULT_ROWS: u64 = 64;

/// Assumed per-probe yield of an event literal's delta window (delta
/// windows are one step's worth of new marks — small by construction).
const EVENT_DEFAULT_ROWS: u64 = 4;

/// A full lowered program: one [`LoweredRule`] per source rule, in rule
/// order, plus the indexes its ops want and the lowering telemetry.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    rules: Vec<LoweredRule>,
    index_requests: Vec<IndexRequest>,
    op_count: u64,
    index_picks: u64,
}

impl LoweredProgram {
    /// The lowered rules, in source-rule order.
    pub(crate) fn rules(&self) -> &[LoweredRule] {
        &self.rules
    }

    /// The indexes the lowered ops probe: build these before evaluating
    /// (replaces [`CompiledProgram::index_requests`] under compiled
    /// evaluation — base-zone requests the cost model rejected are
    /// omitted).
    pub fn index_requests(&self) -> &[IndexRequest] {
        &self.index_requests
    }

    /// Total lowered ops across all rules.
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// Number of access ops whose base zone the cost model chose to probe
    /// through a hash index rather than scan.
    pub fn index_picks(&self) -> u64 {
        self.index_picks
    }
}

/// Estimated rows one probe of this literal enumerates, given the base
/// cardinality and how many of its columns are bound: each bound column is
/// assumed to cut the extension by 4x.
fn est_rows(raw: u64, bound_cols: u32) -> u64 {
    raw >> (2 * bound_cols).min(63)
}

/// The raw (unbound) cardinality estimate of a binding literal.
fn raw_rows(kind: LitKind, pred: PredId, db: &FactStore) -> u64 {
    let base_len = db.relation(pred).map_or(0, |r| r.len()) as u64;
    match kind {
        LitKind::Pos => {
            if base_len == 0 {
                DERIVED_DEFAULT_ROWS
            } else {
                base_len
            }
        }
        _ => EVENT_DEFAULT_ROWS,
    }
}

/// How the cost model ranks a candidate binding literal: fewest estimated
/// rows, then most bound columns, then fewest newly bound variables, then
/// source order (the order candidates are examined).
#[derive(PartialEq, Eq)]
struct Cost {
    est: u64,
    bound_cols: u32,
    unbound_vars: u32,
}

impl Cost {
    fn better_than(&self, other: &Cost) -> bool {
        (
            self.est,
            std::cmp::Reverse(self.bound_cols),
            self.unbound_vars,
        ) < (
            other.est,
            std::cmp::Reverse(other.bound_cols),
            other.unbound_vars,
        )
    }
}

fn cost_of(lit: &CompiledLiteral, bound: &[bool], db: &FactStore) -> Cost {
    let CompiledLiteral::Atom { kind, atom } = lit else {
        unreachable!("cost_of on a non-binding literal");
    };
    let mut bound_cols = 0u32;
    let mut unbound = Vec::new();
    for t in atom.terms.iter() {
        match *t {
            TermSlot::Const(_) => bound_cols += 1,
            TermSlot::Var(s) => {
                if bound[s as usize] {
                    bound_cols += 1;
                } else if !unbound.contains(&s) {
                    unbound.push(s);
                }
            }
        }
    }
    Cost {
        est: est_rows(raw_rows(*kind, atom.pred, db), bound_cols),
        bound_cols,
        unbound_vars: unbound.len() as u32,
    }
}

/// Lower one binding literal into an access op, updating `bound` and the
/// index-request set.
fn lower_access(
    kind: LitKind,
    atom: &crate::compile::CompiledAtom,
    bound: &mut [bool],
    db: &FactStore,
    requests: &mut HashMap<IndexRequest, ()>,
    index_picks: &mut u64,
) -> (AccessOp, DeltaKind) {
    let pred = atom.pred;
    let mut mask_cols: Vec<usize> = Vec::new();
    let mut key: Vec<KeySrc> = Vec::new();
    let mut checks: Vec<ColCheck> = Vec::new();
    let mut binds: Vec<ColBind> = Vec::new();
    // First occurrence column of each variable newly bound by this atom,
    // for repeated-variable checks against the same row.
    let mut first_col: HashMap<u16, u16> = HashMap::new();
    for (col, t) in atom.terms.iter().enumerate() {
        let col16 = u16::try_from(col).expect("atom arity fits u16");
        match *t {
            TermSlot::Const(c) => {
                mask_cols.push(col);
                key.push(KeySrc::Const(c));
                checks.push(ColCheck {
                    col: col16,
                    src: CheckSrc::Const(c),
                });
            }
            TermSlot::Var(s) => {
                if bound[s as usize] {
                    mask_cols.push(col);
                    key.push(KeySrc::Reg(s));
                    checks.push(ColCheck {
                        col: col16,
                        src: CheckSrc::Reg(s),
                    });
                } else if let Some(&c0) = first_col.get(&s) {
                    checks.push(ColCheck {
                        col: col16,
                        src: CheckSrc::Col(c0),
                    });
                } else {
                    first_col.insert(s, col16);
                    binds.push(ColBind { col: col16, reg: s });
                }
            }
        }
    }
    for (&s, _) in first_col.iter() {
        bound[s as usize] = true;
    }
    let mask = ColumnMask::from_cols(mask_cols);
    let (zone, delta_kind) = match kind {
        LitKind::Pos => (AccessZone::Both, DeltaKind::Plus(pred)),
        LitKind::Event(Sign::Insert) => (AccessZone::Plus, DeltaKind::Plus(pred)),
        LitKind::Event(Sign::Delete) => (AccessZone::Minus, DeltaKind::Minus(pred)),
        LitKind::Neg => unreachable!("negations are filters, not access ops"),
    };
    let base_len = db.relation(pred).map_or(0, |r| r.len());
    // Base-zone indexing is a cost-model decision; the mark zones start
    // empty and grow during the run, so they always get their (lazy,
    // incrementally maintained) index when there is a key to probe.
    let index_base = zone == AccessZone::Both && !mask.is_empty() && base_len >= INDEX_MIN_ROWS;
    if index_base {
        *index_picks += 1;
        requests.insert(
            IndexRequest {
                pred,
                mask,
                zone: MarkZone::Base,
            },
            (),
        );
    }
    if !mask.is_empty() {
        match zone {
            AccessZone::Both | AccessZone::Plus => {
                requests.insert(
                    IndexRequest {
                        pred,
                        mask,
                        zone: MarkZone::Plus,
                    },
                    (),
                );
            }
            AccessZone::Minus => {
                requests.insert(
                    IndexRequest {
                        pred,
                        mask,
                        zone: MarkZone::Minus,
                    },
                    (),
                );
            }
        }
    }
    (
        AccessOp {
            pred,
            zone,
            mask,
            key: key.into(),
            index_base,
            checks: checks.into(),
            binds: binds.into(),
        },
        delta_kind,
    )
}

fn keysrc_of(t: TermSlot) -> KeySrc {
    match t {
        TermSlot::Const(c) => KeySrc::Const(c),
        TermSlot::Var(s) => KeySrc::Reg(s),
    }
}

fn lower_rule(
    rule: &CompiledRule,
    db: &FactStore,
    requests: &mut HashMap<IndexRequest, ()>,
    index_picks: &mut u64,
) -> LoweredRule {
    let mut bound = vec![false; rule.num_vars as usize];
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut ops: Vec<Op> = Vec::new();
    let mut binding_ops: Vec<u32> = Vec::new();
    let mut delta_kinds: Vec<DeltaKind> = Vec::new();
    let mut neg_preds: Vec<PredId> = Vec::new();

    let is_ready_filter = |lit: &CompiledLiteral, bound: &[bool]| {
        !lit.is_binding() && lit.var_slots().all(|s| bound[s as usize])
    };

    loop {
        // Filters run as early as their variables allow, in source order —
        // same discipline as the interpreted planner.
        while let Some(i) = remaining
            .iter()
            .position(|&l| is_ready_filter(&rule.body[l], &bound))
        {
            let l = remaining.remove(i);
            match &rule.body[l] {
                CompiledLiteral::Atom { atom, .. } => {
                    neg_preds.push(atom.pred);
                    ops.push(Op::Neg {
                        pred: atom.pred,
                        row: atom.terms.iter().map(|&t| keysrc_of(t)).collect(),
                    });
                }
                CompiledLiteral::Guard { op, lhs, rhs } => ops.push(Op::Guard {
                    op: *op,
                    lhs: keysrc_of(*lhs),
                    rhs: keysrc_of(*rhs),
                }),
            }
        }
        if remaining.is_empty() {
            break;
        }
        // Pick the cheapest binding literal under the cost model.
        let mut best: Option<(usize, Cost)> = None;
        for (i, &l) in remaining.iter().enumerate() {
            if !rule.body[l].is_binding() {
                continue;
            }
            let cost = cost_of(&rule.body[l], &bound, db);
            if best.as_ref().is_none_or(|(_, b)| cost.better_than(b)) {
                best = Some((i, cost));
            }
        }
        let (i, _) = best.expect("safety: some binding literal remains");
        let l = remaining.remove(i);
        let CompiledLiteral::Atom { kind, atom } = &rule.body[l] else {
            unreachable!("binding literals are atoms");
        };
        let (op, dk) = lower_access(*kind, atom, &mut bound, db, requests, index_picks);
        binding_ops.push(u32::try_from(ops.len()).expect("op count fits u32"));
        delta_kinds.push(dk);
        ops.push(Op::Access(op));
    }

    let step0_pred = match ops.first() {
        Some(Op::Access(a)) => Some(a.pred),
        _ => None,
    };
    LoweredRule {
        rule_id: rule.id,
        head_sign: rule.head_sign,
        head_pred: rule.head.pred,
        head: rule.head.terms.iter().map(|&t| keysrc_of(t)).collect(),
        num_regs: rule.num_vars,
        ops: ops.into(),
        binding_ops: binding_ops.into(),
        delta_kinds: delta_kinds.into(),
        neg_preds: neg_preds.into(),
        has_body: !rule.body.is_empty(),
        step0_pred,
    }
}

/// Lower every rule of `program` against the starting database `db` (the
/// cost model's only input — see the module docs for why that keeps
/// lowering deterministic).
pub fn lower(program: &CompiledProgram, db: &FactStore) -> LoweredProgram {
    let mut requests: HashMap<IndexRequest, ()> = HashMap::new();
    let mut index_picks = 0u64;
    let rules: Vec<LoweredRule> = program
        .rules()
        .iter()
        .map(|r| lower_rule(r, db, &mut requests, &mut index_picks))
        .collect();
    let op_count = rules.iter().map(|r| r.ops.len() as u64).sum();
    LoweredProgram {
        rules,
        index_requests: requests.into_keys().collect(),
        op_count,
        index_picks,
    }
}

impl LoweredProgram {
    /// Human-readable dump of the lowered program (the `park analyze
    /// --plan` payload).
    pub fn render(&self, program: &CompiledProgram) -> String {
        let vocab = program.vocab();
        let ks = |k: &KeySrc| match *k {
            KeySrc::Const(c) => vocab.constant(vocab.decode(c)).to_string(),
            KeySrc::Reg(r) => format!("r{r}"),
        };
        let mut s = format!(
            "lowered program: {} rules, {} ops, {} cost-model index picks\n",
            self.rules.len(),
            self.op_count,
            self.index_picks
        );
        for (lr, rule) in self.rules.iter().zip(program.rules()) {
            let head_cols: Vec<String> = lr.head.iter().map(&ks).collect();
            s.push_str(&format!(
                "rule {} -> {}{}({}): {} regs, {} ops\n",
                rule.display_name(),
                match lr.head_sign {
                    Sign::Insert => '+',
                    Sign::Delete => '-',
                },
                vocab.pred_name(lr.head_pred),
                head_cols.join(", "),
                lr.num_regs,
                lr.ops.len(),
            ));
            for (i, op) in lr.ops.iter().enumerate() {
                let line = match op {
                    Op::Access(a) => {
                        let zone = match a.zone {
                            AccessZone::Both => "base+plus",
                            AccessZone::Plus => "plus",
                            AccessZone::Minus => "minus",
                        };
                        let access = if a.mask.is_empty() {
                            "scan".to_string()
                        } else if a.index_base || a.zone != AccessZone::Both {
                            let keys: Vec<String> = a.key.iter().map(&ks).collect();
                            format!("probe[{}]", keys.join(", "))
                        } else {
                            let keys: Vec<String> = a.key.iter().map(&ks).collect();
                            format!("filter-scan[{}]", keys.join(", "))
                        };
                        let binds: Vec<String> = a
                            .binds
                            .iter()
                            .map(|b| format!("r{}<-c{}", b.reg, b.col))
                            .collect();
                        format!(
                            "access {} {} {} checks={} binds=[{}]",
                            vocab.pred_name(a.pred),
                            zone,
                            access,
                            a.checks.len(),
                            binds.join(", "),
                        )
                    }
                    Op::Neg { pred, row } => {
                        let cols: Vec<String> = row.iter().map(&ks).collect();
                        format!("neg {}({})", vocab.pred_name(*pred), cols.join(", "))
                    }
                    Op::Guard { op, lhs, rhs } => {
                        format!("guard {} {} {}", ks(lhs), op, ks(rhs))
                    }
                };
                s.push_str(&format!("  {i}: {line}\n"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn lowered(rules: &str, facts: &str) -> (CompiledProgram, FactStore, LoweredProgram) {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        let lp = lower(&program, &db);
        (program, db, lp)
    }

    #[test]
    fn small_base_shards_are_scanned_not_indexed() {
        let (_, _, lp) = lowered(
            "edge(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "edge(a, b). edge(b, c).",
        );
        let rule = &lp.rules()[0];
        let accesses: Vec<&AccessOp> = rule
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Access(a) => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(accesses.len(), 2);
        // Two facts: under INDEX_MIN_ROWS, so no base index for the probe.
        assert!(accesses.iter().all(|a| !a.index_base));
        assert_eq!(lp.index_picks(), 0);
        assert!(lp.index_requests().iter().all(|r| r.zone != MarkZone::Base));
    }

    #[test]
    fn large_base_shards_get_cost_model_indexes() {
        let facts: String = (0..40)
            .map(|i| format!("edge(n{}, n{}). ", i, i + 1))
            .collect();
        let (_, _, lp) = lowered("edge(X, Y), edge(Y, Z) -> +tc(X, Z).", &facts);
        let rule = &lp.rules()[0];
        let probed: Vec<bool> = rule
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Access(a) => Some(a.index_base),
                _ => None,
            })
            .collect();
        // First access scans (nothing bound), second probes by the shared
        // variable through a base index.
        assert_eq!(probed, vec![false, true]);
        assert_eq!(lp.index_picks(), 1);
        assert!(lp.index_requests().iter().any(|r| r.zone == MarkZone::Base));
    }

    #[test]
    fn cost_model_prefers_selective_literal_first() {
        // `big` has 40 rows, `tiny` has 1: with nothing bound the cost
        // model starts from `tiny` even though `big` comes first in source
        // order (the interpreted planner would start from `big`).
        let facts: String = (0..40)
            .map(|i| format!("big(n{}, m{}). ", i, i))
            .chain(std::iter::once("tiny(n3, x). ".to_string()))
            .collect();
        let (_, _, lp) = lowered("big(X, Y), tiny(X, Z) -> +out(Y, Z).", &facts);
        let rule = &lp.rules()[0];
        let Op::Access(first) = &rule.ops[0] else {
            panic!("expected access op first");
        };
        let Op::Access(second) = &rule.ops[1] else {
            panic!("expected access op second");
        };
        assert_eq!(rule.binding_ops.len(), 2);
        // tiny (1 row) is enumerated first, then big probed with X bound.
        assert!(first.mask.is_empty());
        assert_eq!(second.mask.count(), 1);
    }

    #[test]
    fn filters_schedule_as_early_as_bound() {
        let (_, _, lp) = lowered("p(X), !q(X), r(X, Y), X != Y -> +s(Y).", "p(a). r(a, b).");
        let rule = &lp.rules()[0];
        let shape: Vec<&str> = rule
            .ops
            .iter()
            .map(|o| match o {
                Op::Access(_) => "access",
                Op::Neg { .. } => "neg",
                Op::Guard { .. } => "guard",
            })
            .collect();
        // !q(X) runs right after X is bound, the guard after Y is bound.
        assert_eq!(shape, vec!["access", "neg", "access", "guard"]);
        assert_eq!(rule.neg_preds.len(), 1);
    }

    #[test]
    fn repeated_variables_check_within_the_row() {
        let (_, _, lp) = lowered("q(X, X) -> +d(X).", "q(a, a). q(a, b).");
        let rule = &lp.rules()[0];
        let Op::Access(a) = &rule.ops[0] else {
            panic!("expected access op");
        };
        assert_eq!(a.binds.len(), 1);
        assert_eq!(
            a.checks.as_ref(),
            &[ColCheck {
                col: 1,
                src: CheckSrc::Col(0)
            }]
        );
    }

    #[test]
    fn render_names_every_op() {
        let facts: String = (0..40)
            .map(|i| format!("edge(n{}, n{}). ", i, i + 1))
            .collect();
        let (program, _, lp) = lowered(
            "edge(X, Y), edge(Y, Z), !blocked(X), X != Z -> +tc(X, Z).",
            &facts,
        );
        let plan = lp.render(&program);
        assert!(plan.contains("lowered program: 1 rules"));
        assert!(plan.contains("access edge"));
        assert!(plan.contains("probe["));
        assert!(plan.contains("neg blocked(r0)"));
        assert!(plan.contains("guard r0 != r2"));
        assert!(plan.contains("-> +tc(r0, r2)"));
    }

    #[test]
    fn event_literals_run_before_positive_joins() {
        let facts: String = (0..40).map(|i| format!("p(n{}, m{}). ", i, i)).collect();
        let (_, _, lp) = lowered("p(X, Y), +q(X) -> +out(Y).", &facts);
        let rule = &lp.rules()[0];
        let Op::Access(first) = &rule.ops[0] else {
            panic!("expected access op");
        };
        // The event's delta window is assumed tiny; it binds X before the
        // 40-row `p` shard is probed.
        assert_eq!(first.zone, AccessZone::Plus);
        assert_eq!(rule.delta_kinds.len(), 2);
    }
}
