//! Static analysis of active-rule programs.
//!
//! Nothing here changes the semantics — PARK handles recursion,
//! unstratified negation, and conflicts at run time — but these analyses
//! power tooling (the CLI's `analyze` command) and fast paths:
//!
//! * the **predicate dependency graph** with positive / negative / event
//!   edges, and its strongly connected components (recursion detection);
//! * **stratifiability**: no negative edge inside a recursive component.
//!   Unstratified programs are legal under PARK's inflationary semantics,
//!   but flagging them helps users who expect stratified-datalog behaviour;
//! * **potential conflict pairs**: rules with unifiable heads of opposite
//!   polarity — the pairs `conflicts(P, I)` can ever cite, and the reason a
//!   program can need conflict resolution at all.

use crate::compile::{CompiledLiteral, CompiledProgram, CompiledRule, LitKind, RuleId, TermSlot};
use park_storage::PredId;
use park_syntax::Sign;
use std::collections::{HashMap, HashSet};

/// How a rule body refers to a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Through a positive condition literal.
    Positive,
    /// Through a negated condition literal.
    Negative,
    /// Through an event literal (`+a` / `-a`).
    Event,
}

/// The predicate dependency graph of a program: an edge `head → body-pred`
/// for every body literal of every rule.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    /// Adjacency: `(from head-pred, to body-pred, kind)` edges, deduplicated.
    pub edges: HashSet<(PredId, PredId, EdgeKind)>,
    /// All predicates mentioned anywhere.
    pub preds: HashSet<PredId>,
}

impl DependencyGraph {
    /// Build the graph of a compiled program.
    pub fn of(program: &CompiledProgram) -> Self {
        let mut g = DependencyGraph::default();
        for rule in program.rules() {
            g.preds.insert(rule.head.pred);
            for lit in rule.body.iter() {
                // Guards reference no predicates.
                let CompiledLiteral::Atom { kind, atom } = lit else {
                    continue;
                };
                g.preds.insert(atom.pred);
                let kind = match kind {
                    LitKind::Pos => EdgeKind::Positive,
                    LitKind::Neg => EdgeKind::Negative,
                    LitKind::Event(_) => EdgeKind::Event,
                };
                g.edges.insert((rule.head.pred, atom.pred, kind));
            }
        }
        g
    }

    /// Successors of `p` (body predicates its rules depend on).
    pub fn successors(&self, p: PredId) -> impl Iterator<Item = (PredId, EdgeKind)> + '_ {
        self.edges
            .iter()
            .filter(move |(f, _, _)| *f == p)
            .map(|&(_, t, k)| (t, k))
    }

    /// Strongly connected components (Tarjan), in reverse topological
    /// order; each component is sorted for determinism.
    pub fn sccs(&self) -> Vec<Vec<PredId>> {
        // Iterative Tarjan to stay safe on deep graphs.
        let mut preds: Vec<PredId> = self.preds.iter().copied().collect();
        preds.sort();
        let index_of: HashMap<PredId, usize> =
            preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let n = preds.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(f, t, _) in &self.edges {
            adj[index_of[&f]].push(index_of[&t]);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }

        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<PredId>> = Vec::new();

        // Explicit DFS stack: (node, child-iterator position).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(*ci) {
                    *ci += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp.push(preds[w]);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        sccs
    }

    /// Predicates involved in recursion: members of an SCC of size > 1, or
    /// with a self-loop.
    pub fn recursive_preds(&self) -> HashSet<PredId> {
        let mut out = HashSet::new();
        for scc in self.sccs() {
            if scc.len() > 1 {
                out.extend(scc);
            } else if let [p] = scc[..] {
                if self.edges.iter().any(|&(f, t, _)| f == p && t == p) {
                    out.insert(p);
                }
            }
        }
        out
    }

    /// Stratifiability: no negative (or event) edge connecting two
    /// predicates of the same recursive component. Event edges are treated
    /// like negative ones — both peek at update marks rather than the
    /// growing positive extension.
    pub fn is_stratified(&self) -> bool {
        let mut comp_of: HashMap<PredId, usize> = HashMap::new();
        for (i, scc) in self.sccs().into_iter().enumerate() {
            for p in scc {
                comp_of.insert(p, i);
            }
        }
        // An intra-component non-positive edge is recursion through
        // negation/events: two distinct predicates in one SCC are mutually
        // recursive, and a self-edge is directly recursive.
        !self
            .edges
            .iter()
            .any(|&(f, t, k)| k != EdgeKind::Positive && comp_of.get(&f) == comp_of.get(&t))
    }
}

/// A pair of rules whose heads can clash: opposite polarity on the same
/// predicate with unifiable head patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictPair {
    /// The rule with the inserting head.
    pub inserting: RuleId,
    /// The rule with the deleting head.
    pub deleting: RuleId,
    /// The contested predicate.
    pub pred: PredId,
}

/// Do two head patterns unify? Variables are rule-local, so two distinct
/// variables always unify; only constant/constant clashes rule a pair out.
fn heads_unify(a: &CompiledRule, b: &CompiledRule) -> bool {
    a.head
        .terms
        .iter()
        .zip(b.head.terms.iter())
        .all(|(x, y)| match (x, y) {
            (TermSlot::Const(cx), TermSlot::Const(cy)) => cx == cy,
            _ => true,
        })
}

/// All potential conflict pairs of a program, sorted.
pub fn conflict_pairs(program: &CompiledProgram) -> Vec<ConflictPair> {
    let mut out = Vec::new();
    for a in program.rules() {
        if a.head_sign != Sign::Insert {
            continue;
        }
        for b in program.rules() {
            if b.head_sign == Sign::Delete && a.head.pred == b.head.pred && heads_unify(a, b) {
                out.push(ConflictPair {
                    inserting: a.id,
                    deleting: b.id,
                    pred: a.head.pred,
                });
            }
        }
    }
    out.sort_by_key(|p| (p.inserting, p.deleting));
    out
}

/// A one-stop program report for tooling.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Number of rules.
    pub rules: usize,
    /// Number of distinct predicates.
    pub preds: usize,
    /// Recursive predicate names, sorted.
    pub recursive: Vec<String>,
    /// Whether the program is stratifiable.
    pub stratified: bool,
    /// Potential conflict pairs as `(inserting, deleting, predicate)`
    /// display names.
    pub conflicts: Vec<(String, String, String)>,
}

/// Analyze a compiled program.
pub fn report(program: &CompiledProgram) -> ProgramReport {
    let graph = DependencyGraph::of(program);
    let vocab = program.vocab();
    let mut recursive: Vec<String> = graph
        .recursive_preds()
        .into_iter()
        .map(|p| vocab.pred_name(p).to_string())
        .collect();
    recursive.sort();
    let conflicts = conflict_pairs(program)
        .into_iter()
        .map(|c| {
            (
                program.rule(c.inserting).display_name(),
                program.rule(c.deleting).display_name(),
                vocab.pred_name(c.pred).to_string(),
            )
        })
        .collect();
    ProgramReport {
        rules: program.len(),
        preds: graph.preds.len(),
        recursive,
        stratified: graph.is_stratified(),
        conflicts,
    }
}

/// How policy-sensitive a program is on a concrete database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Confluence {
    /// No predicate has heads of both polarities: *every* policy yields
    /// the same result on *every* database (no conflict can ever arise).
    StaticallyConfluent,
    /// Conflicts arose on this database, but the two extreme policies
    /// (always-insert, always-delete) agreed on the final state — weak
    /// evidence of insensitivity *for this database*; other policies may
    /// still differ.
    ProbablyConfluent {
        /// Conflicts each probe run resolved.
        conflicts: u64,
    },
    /// The extreme policies produced different result states: the program
    /// is policy-sensitive on this database (almost always the intended
    /// situation for active rules with conflicts).
    PolicySensitive {
        /// Facts in the always-insert result missing from always-delete.
        only_with_insert: Vec<String>,
        /// Facts in the always-delete result missing from always-insert.
        only_with_delete: Vec<String>,
    },
}

/// Probe whether a program's result depends on the conflict-resolution
/// policy for a given database, by comparing the two constant extreme
/// policies. A static conflict-freedom check short-circuits the runs.
pub fn confluence_probe(
    engine: &crate::Engine,
    db: &park_storage::FactStore,
) -> crate::EngineResult<Confluence> {
    use crate::conflict::{ConflictResolver, Resolution, SelectContext};
    if !engine.program().possibly_conflicting() {
        return Ok(Confluence::StaticallyConfluent);
    }
    struct Constant(Resolution);
    impl ConflictResolver for Constant {
        fn name(&self) -> &str {
            "constant-probe"
        }
        fn select(
            &mut self,
            _: &SelectContext<'_>,
            _: &crate::conflict::Conflict,
        ) -> Result<Resolution, String> {
            Ok(self.0)
        }
    }
    let ins = engine.park(db, &mut Constant(Resolution::Insert))?;
    let del = engine.park(db, &mut Constant(Resolution::Delete))?;
    if ins.database.same_facts(&del.database) {
        return Ok(Confluence::ProbablyConfluent {
            conflicts: ins
                .stats
                .conflicts_resolved
                .max(del.stats.conflicts_resolved),
        });
    }
    let (only_ins, only_del) = del.database.diff(&ins.database);
    let vocab = db.vocab();
    let render = |xs: &[(park_storage::PredId, park_storage::Tuple)]| {
        xs.iter().map(|(p, t)| vocab.display_fact(*p, t)).collect()
    };
    Ok(Confluence::PolicySensitive {
        only_with_insert: render(&only_ins),
        only_with_delete: render(&only_del),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        CompiledProgram::compile(Vocabulary::new(), &parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn dependency_graph_edges() {
        let p = compile("a(X), !b(X), +c(X) -> +d(X).");
        let g = DependencyGraph::of(&p);
        assert_eq!(g.preds.len(), 4);
        assert_eq!(g.edges.len(), 3);
        let d = p.vocab().lookup_pred("d").unwrap();
        let kinds: Vec<EdgeKind> = {
            let mut v: Vec<_> = g.successors(d).map(|(_, k)| k).collect();
            v.sort();
            v
        };
        assert_eq!(
            kinds,
            vec![EdgeKind::Positive, EdgeKind::Negative, EdgeKind::Event]
        );
    }

    #[test]
    fn sccs_find_recursion() {
        let p = compile(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z). tc(X, X) -> +cyc.",
        );
        let g = DependencyGraph::of(&p);
        let tc = p.vocab().lookup_pred("tc").unwrap();
        assert!(g.recursive_preds().contains(&tc));
        assert_eq!(g.recursive_preds().len(), 1);
        // SCCs come out in reverse topological order: leaves first.
        let sccs = g.sccs();
        assert!(sccs.iter().any(|c| c == &vec![tc]));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        let p = compile("a(X) -> +b(X). b(X) -> +a(X).");
        let g = DependencyGraph::of(&p);
        let sccs = g.sccs();
        assert!(sccs.iter().any(|c| c.len() == 2));
        assert_eq!(g.recursive_preds().len(), 2);
    }

    #[test]
    fn self_loop_only_predicate_is_its_own_recursive_component() {
        // A pred whose only cycle is a self-edge must count as recursive,
        // distinct from a singleton component with no self-loop (`q`).
        let p = compile("a(X), e(X, Y) -> +a(Y). a(X) -> +q(X).");
        let g = DependencyGraph::of(&p);
        let a = p.vocab().lookup_pred("a").unwrap();
        let q = p.vocab().lookup_pred("q").unwrap();
        assert!(g.edges.contains(&(a, a, EdgeKind::Positive)));
        let sccs = g.sccs();
        assert!(sccs.iter().any(|c| c == &vec![a]));
        assert!(sccs.iter().any(|c| c == &vec![q]));
        assert!(g.recursive_preds().contains(&a));
        assert!(!g.recursive_preds().contains(&q));
        assert_eq!(g.recursive_preds().len(), 1);
    }

    #[test]
    fn disconnected_components_all_appear_once() {
        // Two islands that never reference each other: every predicate
        // must land in exactly one SCC, leaves before their dependents.
        let p = compile("a(X) -> +b(X). c(X), !d(X) -> +c2(X).");
        let g = DependencyGraph::of(&p);
        let sccs = g.sccs();
        let mut seen: Vec<_> = sccs.iter().flatten().copied().collect();
        assert_eq!(seen.len(), 5, "every pred appears exactly once: {sccs:?}");
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 5);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(g.recursive_preds().is_empty());
        assert!(g.is_stratified());
        // Determinism across rebuilds of the same program.
        assert_eq!(sccs, DependencyGraph::of(&p).sccs());
    }

    #[test]
    fn event_edge_only_cycles_are_one_component_and_unstratified() {
        // The cycle exists only through event literals: `+p` triggers `q`
        // and `+q` triggers `p`. Event edges count for both the SCC and
        // the stratification check (marks depend on the Γ-step).
        let p = compile("+p(X) -> +q(X). +q(X) -> +p(X).");
        let g = DependencyGraph::of(&p);
        let pp = p.vocab().lookup_pred("p").unwrap();
        let q = p.vocab().lookup_pred("q").unwrap();
        assert!(g.edges.contains(&(q, pp, EdgeKind::Event)));
        assert!(g.edges.contains(&(pp, q, EdgeKind::Event)));
        assert!(!g.edges.iter().any(|&(_, _, k)| k == EdgeKind::Positive));
        let sccs = g.sccs();
        assert!(sccs.iter().any(|c| c.len() == 2));
        assert_eq!(g.recursive_preds().len(), 2);
        assert!(!g.is_stratified());
    }

    #[test]
    fn stratification_detects_negative_cycles() {
        // win(X) :- move(X, Y), !win(Y) — the classic unstratified program.
        let p = compile("move(X, Y), !win(Y) -> +win(X).");
        let g = DependencyGraph::of(&p);
        assert!(!g.is_stratified());
        // Plain transitive closure is stratified.
        let p = compile("edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).");
        assert!(DependencyGraph::of(&p).is_stratified());
        // Negation that doesn't feed back is fine.
        let p = compile("a(X), !b(X) -> +c(X).");
        assert!(DependencyGraph::of(&p).is_stratified());
    }

    #[test]
    fn conflict_pairs_require_unifiable_heads() {
        let p = compile(
            "r1: p(X) -> +q(X, a). r2: p(X) -> -q(X, b). r3: p(X) -> -q(X, a). r4: p(X) -> -z(X).",
        );
        let pairs = conflict_pairs(&p);
        // r1 clashes with r3 (both …, a) but not r2 (a vs b); r4 is a
        // different predicate.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].inserting, RuleId(0));
        assert_eq!(pairs[0].deleting, RuleId(2));
    }

    #[test]
    fn variables_unify_with_anything() {
        let p = compile("r1: p(X) -> +q(X). r2: p(X) -> -q(a).");
        assert_eq!(conflict_pairs(&p).len(), 1);
    }

    #[test]
    fn report_summarizes() {
        let p = compile(
            "base: edge(X, Y) -> +tc(X, Y).
             step: tc(X, Y), edge(Y, Z) -> +tc(X, Z).
             grow: p(X) -> +q(X).
             cut: p(X) -> -q(X).",
        );
        let r = report(&p);
        assert_eq!(r.rules, 4);
        assert!(r.stratified);
        assert_eq!(r.recursive, vec!["tc"]);
        assert_eq!(r.conflicts, vec![("grow".into(), "cut".into(), "q".into())]);
    }

    #[test]
    fn confluence_probe_classifies() {
        use park_storage::FactStore;
        use std::sync::Arc;
        let run = |rules: &str, facts: &str| {
            let vocab = Vocabulary::new();
            let engine =
                crate::Engine::new(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
            let db = FactStore::from_source(vocab, facts).unwrap();
            confluence_probe(&engine, &db).unwrap()
        };
        // Insert-only: statically confluent.
        assert_eq!(
            run("p(X) -> +q(X).", "p(a)."),
            Confluence::StaticallyConfluent
        );
        // Conflicting rules whose conflict is unreachable on this data.
        assert_eq!(
            run("p(X) -> +q(X). z(X) -> -q(X).", "p(a)."),
            Confluence::ProbablyConfluent { conflicts: 0 }
        );
        // A live conflict: policy-sensitive.
        match run("p -> +q. p -> -q.", "p.") {
            Confluence::PolicySensitive {
                only_with_insert,
                only_with_delete,
            } => {
                assert_eq!(only_with_insert, vec!["q"]);
                assert!(only_with_delete.is_empty());
            }
            other => panic!("expected policy sensitivity, got {other:?}"),
        }
    }

    #[test]
    fn conflict_free_program_reports_empty() {
        let p = compile("a(X) -> +b(X). b(X) -> +c(X).");
        let r = report(&p);
        assert!(r.conflicts.is_empty());
        assert!(!p.possibly_conflicting());
    }
}
