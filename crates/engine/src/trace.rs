//! Execution traces in the paper's step-listing style.
//!
//! With tracing enabled, the engine records one event per Γ step, per
//! detected inconsistency, per conflict resolution, and per restart. The
//! renderer reproduces listings like the paper's Section 5 computation:
//!
//! ```text
//! run 1
//!   (1) {p, +a, +q}
//!   (2) {p, +a, +q, +b, -q}   ! inconsistent: q
//!   conflict (q, {(r2)}, {(r4)}): inertia -> delete, blocking {(r2)}
//! run 2
//!   (1) {p, +a}
//!   ...
//! ```

use crate::conflict::Resolution;
use park_json::Json;
use std::fmt;

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A (re)start of the inflationary computation from `D`.
    RunStarted {
        /// 1-based run number.
        run: u64,
    },
    /// A consistent Γ step was applied.
    Step {
        /// The run.
        run: u64,
        /// 1-based step within the run.
        step: u64,
        /// `I` after the step, in paper notation.
        interp: String,
        /// Marked atoms added in this step.
        added: Vec<String>,
    },
    /// Γ produced an inconsistent result; conflict resolution follows.
    Inconsistent {
        /// The run.
        run: u64,
        /// The step at which the inconsistency appeared.
        step: u64,
        /// The conflicting atoms actually handed to `SELECT` this restart.
        atoms: Vec<String>,
        /// Conflicting atoms detected but *not* resolved this restart
        /// (non-empty only under `ResolutionScope::One`).
        deferred: Vec<String>,
    },
    /// One conflict was resolved.
    ConflictResolved {
        /// The conflict, rendered `(a, ins, del)`.
        conflict: String,
        /// The policy's name.
        policy: String,
        /// The decision.
        resolution: Resolution,
        /// The groundings newly blocked.
        blocked: Vec<String>,
    },
    /// The final fixpoint was reached.
    Fixpoint {
        /// The run that converged.
        run: u64,
        /// `I` at the fixpoint.
        interp: String,
        /// The final blocked set, rendered.
        blocked: Vec<String>,
    },
}

impl TraceEvent {
    fn to_json_value(&self) -> Json {
        fn strings(items: &[String]) -> Json {
            Json::Array(items.iter().map(Json::str).collect())
        }
        match self {
            TraceEvent::RunStarted { run } => Json::object([
                ("event", Json::str("run_started")),
                ("run", Json::from(*run)),
            ]),
            TraceEvent::Step {
                run,
                step,
                interp,
                added,
            } => Json::object([
                ("event", Json::str("step")),
                ("run", Json::from(*run)),
                ("step", Json::from(*step)),
                ("interp", Json::str(interp)),
                ("added", strings(added)),
            ]),
            TraceEvent::Inconsistent {
                run,
                step,
                atoms,
                deferred,
            } => Json::object([
                ("event", Json::str("inconsistent")),
                ("run", Json::from(*run)),
                ("step", Json::from(*step)),
                ("atoms", strings(atoms)),
                ("deferred", strings(deferred)),
            ]),
            TraceEvent::ConflictResolved {
                conflict,
                policy,
                resolution,
                blocked,
            } => Json::object([
                ("event", Json::str("conflict_resolved")),
                ("conflict", Json::str(conflict)),
                ("policy", Json::str(policy)),
                (
                    "resolution",
                    Json::str(match resolution {
                        Resolution::Insert => "Insert",
                        Resolution::Delete => "Delete",
                    }),
                ),
                ("blocked", strings(blocked)),
            ]),
            TraceEvent::Fixpoint {
                run,
                interp,
                blocked,
            } => Json::object([
                ("event", Json::str("fixpoint")),
                ("run", Json::from(*run)),
                ("interp", Json::str(interp)),
                ("blocked", strings(blocked)),
            ]),
        }
    }

    fn from_json_value(value: &Json) -> Result<TraceEvent, String> {
        fn run_of(value: &Json) -> Result<u64, String> {
            num(value, "run")
        }
        fn num(value: &Json, key: &str) -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_i64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric `{key}`"))
        }
        fn text(value: &Json, key: &str) -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string `{key}`"))
        }
        fn strings(value: &Json, key: &str) -> Result<Vec<String>, String> {
            value
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing array `{key}`"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in `{key}`"))
                })
                .collect()
        }
        let tag = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing `event` tag")?;
        match tag {
            "run_started" => Ok(TraceEvent::RunStarted {
                run: run_of(value)?,
            }),
            "step" => Ok(TraceEvent::Step {
                run: run_of(value)?,
                step: num(value, "step")?,
                interp: text(value, "interp")?,
                added: strings(value, "added")?,
            }),
            "inconsistent" => Ok(TraceEvent::Inconsistent {
                run: run_of(value)?,
                step: num(value, "step")?,
                atoms: strings(value, "atoms")?,
                // Absent in traces written before the field existed.
                deferred: strings(value, "deferred").unwrap_or_default(),
            }),
            "conflict_resolved" => Ok(TraceEvent::ConflictResolved {
                conflict: text(value, "conflict")?,
                policy: text(value, "policy")?,
                resolution: match text(value, "resolution")?.as_str() {
                    "Insert" => Resolution::Insert,
                    "Delete" => Resolution::Delete,
                    other => return Err(format!("unknown resolution `{other}`")),
                },
                blocked: strings(value, "blocked")?,
            }),
            "fixpoint" => Ok(TraceEvent::Fixpoint {
                run: run_of(value)?,
                interp: text(value, "interp")?,
                blocked: strings(value, "blocked")?,
            }),
            other => Err(format!("unknown event tag `{other}`")),
        }
    }
}

/// An ordered list of trace events.
///
/// Equality, JSON encoding, and rendering cover the *events* only: the
/// [`Trace::notes`] side channel carries debug annotations (e.g. which
/// steps a warm restart replayed) that must not perturb the event stream
/// or any byte-identity comparison against it.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    notes: Vec<String>,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Eq for Trace {}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// The events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Append a debug annotation (not part of the event stream).
    pub fn push_note(&mut self, note: String) {
        self.notes.push(note);
    }

    /// Debug annotations recorded alongside the events.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// True if no events were recorded (tracing disabled or nothing ran).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Encode as a JSON array of tagged events (for tooling): each event is
    /// an object whose `event` member names the variant in `snake_case`,
    /// followed by the variant's fields in declaration order.
    pub fn to_json(&self) -> String {
        Json::Array(self.events.iter().map(TraceEvent::to_json_value).collect()).to_pretty()
    }

    /// Decode a JSON array produced by [`Trace::to_json`].
    pub fn from_json(json: &str) -> Result<Trace, String> {
        let doc = park_json::parse(json).map_err(|e| e.to_string())?;
        let items = doc.as_array().ok_or("trace JSON must be an array")?;
        let events = items
            .iter()
            .map(TraceEvent::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace {
            events,
            notes: Vec::new(),
        })
    }

    /// Render the whole trace as indented text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            match e {
                TraceEvent::RunStarted { run } => {
                    s.push_str(&format!("run {run}\n"));
                }
                TraceEvent::Step {
                    step,
                    interp,
                    added,
                    ..
                } => {
                    s.push_str(&format!("  ({step}) {interp}"));
                    if !added.is_empty() {
                        s.push_str(&format!("   added: {}", added.join(", ")));
                    }
                    s.push('\n');
                }
                TraceEvent::Inconsistent {
                    step,
                    atoms,
                    deferred,
                    ..
                } => {
                    s.push_str(&format!("  ({step}) ! inconsistent: {}", atoms.join(", ")));
                    if !deferred.is_empty() {
                        s.push_str(&format!("   (deferred: {})", deferred.join(", ")));
                    }
                    s.push('\n');
                }
                TraceEvent::ConflictResolved {
                    conflict,
                    policy,
                    resolution,
                    blocked,
                } => {
                    s.push_str(&format!(
                        "  conflict {conflict}: {policy} -> {resolution}, blocking {{{}}}\n",
                        blocked.join(", ")
                    ));
                }
                TraceEvent::Fixpoint {
                    run,
                    interp,
                    blocked,
                } => {
                    s.push_str(&format!(
                        "fixpoint in run {run}: {interp}\n  blocked: {{{}}}\n",
                        blocked.join(", ")
                    ));
                }
            }
        }
        s
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_paper_style_listing() {
        let mut t = Trace::new();
        t.push(TraceEvent::RunStarted { run: 1 });
        t.push(TraceEvent::Step {
            run: 1,
            step: 1,
            interp: "{p, +a, +q}".into(),
            added: vec!["+a".into(), "+q".into()],
        });
        t.push(TraceEvent::Inconsistent {
            run: 1,
            step: 2,
            atoms: vec!["q".into()],
            deferred: vec![],
        });
        t.push(TraceEvent::ConflictResolved {
            conflict: "(q, {(r2)}, {(r4)})".into(),
            policy: "inertia".into(),
            resolution: Resolution::Delete,
            blocked: vec!["(r2)".into()],
        });
        t.push(TraceEvent::Fixpoint {
            run: 2,
            interp: "{p, +a}".into(),
            blocked: vec!["(r2)".into()],
        });
        let r = t.render();
        assert!(r.contains("run 1"));
        assert!(r.contains("(1) {p, +a, +q}"));
        assert!(r.contains("inconsistent: q"));
        assert!(r.contains("inertia -> delete"));
        assert!(r.contains("fixpoint in run 2"));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut t = Trace::new();
        t.push(TraceEvent::RunStarted { run: 1 });
        t.push(TraceEvent::ConflictResolved {
            conflict: "(q, {(r1)}, {(r2)})".into(),
            policy: "inertia".into(),
            resolution: Resolution::Insert,
            blocked: vec!["(r2)".into()],
        });
        let json = t.to_json();
        assert!(json.contains("\"event\": \"run_started\""), "{json}");
        assert!(json.contains("\"resolution\": \"Insert\""), "{json}");
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn deferred_conflicts_render_and_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceEvent::Inconsistent {
            run: 1,
            step: 2,
            atoms: vec!["q".into()],
            deferred: vec!["r".into(), "s".into()],
        });
        let rendered = t.render();
        assert!(rendered.contains("inconsistent: q"), "{rendered}");
        assert!(rendered.contains("(deferred: r, s)"), "{rendered}");
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.events(), t.events());
        // Traces written before `deferred` existed still decode.
        let legacy = r#"[{"event": "inconsistent", "run": 1, "step": 2, "atoms": ["q"]}]"#;
        let back = Trace::from_json(legacy).unwrap();
        assert_eq!(
            back.events(),
            &[TraceEvent::Inconsistent {
                run: 1,
                step: 2,
                atoms: vec!["q".into()],
                deferred: vec![],
            }]
        );
    }

    #[test]
    fn notes_are_a_side_channel_outside_equality_and_json() {
        let mut a = Trace::new();
        a.push(TraceEvent::RunStarted { run: 1 });
        let mut b = a.clone();
        b.push_note("run 2: replayed 3 steps".into());
        assert_eq!(a, b, "notes must not perturb trace equality");
        assert_eq!(b.notes(), &["run 2: replayed 3 steps".to_string()]);
        assert!(!b.to_json().contains("replayed"), "{}", b.to_json());
    }

    #[test]
    fn malformed_trace_json_rejected() {
        assert!(Trace::from_json("{not json").is_err());
        assert!(Trace::from_json("{}").is_err());
        assert!(Trace::from_json("[{\"event\": \"no_such_tag\"}]").is_err());
    }
}
