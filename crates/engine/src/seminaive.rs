//! Semi-naive evaluation of the Γ operator.
//!
//! Naive evaluation ([`crate::gamma::fire_all`]) re-enumerates every valid
//! grounding at every step. Within one inflationary run, however, a
//! grounding that becomes valid at step *k* must use at least one mark
//! added at step *k−1* (zones only grow, and a negated literal can only
//! *become* valid through a new `-b` mark) — so each step only needs to
//! join against the previous step's **delta**.
//!
//! [`fire_new`] enumerates exactly the groundings that became valid in the
//! last step, using the classic decomposition: for each binding literal
//! position *d* (in plan order), literal *d* ranges over the delta window,
//! earlier binding literals over the pre-delta (old) window, later ones
//! over the full extension — every new grounding is produced exactly once,
//! at its first delta position. Rules whose negated literals gained new
//! `-b` marks fall back to full enumeration for that step (the only way a
//! negated literal becomes valid without any binding-literal delta).
//!
//! ## Why this is observably identical to naive evaluation
//!
//! Per step, the heads of *old* groundings are already marked in `I`, so
//! the inflationary step adds the same marks either way; and conflict
//! sides are always merged with the run's provenance (which holds every
//! grounding that ever fired), so `SELECT` sees identical `(a, ins, del)`
//! triples. The engine's `EngineOptions::evaluation` switch is therefore a
//! pure performance choice, benchmarked in `benches/evaluation.rs` and
//! property-tested for agreement in `tests/properties.rs`.
//!
//! ## Parallel evaluation: shard ownership
//!
//! The enumeration decomposes into *units* — one fallback unit per
//! negation-delta rule, one unit per `(rule, delta position)` pair
//! otherwise, in sequential emission order. Units are grouped into shard
//! tasks by the predicate their rule's first plan step enumerates, exactly
//! as in [`crate::gamma`]: each stored relation is driven by one task, and
//! per-unit buffers are merged back into unit order, so the fired stream
//! is byte-identical to [`fire_new`]'s. The decomposition depends only on
//! the program and the step's deltas — never on the thread count.

use crate::compile::{CompiledLiteral, CompiledProgram, CompiledRule, LitKind, TermSlot};
use crate::gamma::{merge_units, FiredAction, Scratch};
use crate::grounding::{BlockedSet, Grounding};
use crate::interp::IInterpretation;
use crate::validity;
use park_storage::{Code, FxHashMap, PredId};
use park_syntax::Sign;

/// Per-predicate sizes of the `I⁺` and `I⁻` zones at a step boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneLens {
    plus: Vec<u32>,
    minus: Vec<u32>,
}

impl ZoneLens {
    /// Capture the current zone sizes of an interpretation.
    pub fn capture(interp: &IInterpretation) -> Self {
        let n = interp.vocab().pred_count();
        let len_of = |store: &park_storage::FactStore, i: usize| {
            store.relation(PredId(i as u32)).map_or(0u32, |r| {
                u32::try_from(r.len()).expect("relation too large")
            })
        };
        ZoneLens {
            plus: (0..n).map(|i| len_of(interp.plus(), i)).collect(),
            minus: (0..n).map(|i| len_of(interp.minus(), i)).collect(),
        }
    }

    pub(crate) fn plus_len(&self, pred: PredId) -> u32 {
        self.plus.get(pred.0 as usize).copied().unwrap_or(0)
    }

    pub(crate) fn minus_len(&self, pred: PredId) -> u32 {
        self.minus.get(pred.0 as usize).copied().unwrap_or(0)
    }
}

/// Which window of a zone a plan step enumerates in the current pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Window {
    /// Everything present before the previous step (`[0, prev)`).
    Old,
    /// Added during the previous step (`[prev, curr)`).
    Delta,
    /// The whole current extension (`[0, curr)`).
    Full,
}

/// One unit of semi-naive evaluation, in sequential emission order.
#[derive(Debug, Clone, Copy)]
enum SemiUnit {
    /// Full re-enumeration of one rule (negation-delta fallback).
    Fallback {
        /// Rule index in program order.
        rule: usize,
    },
    /// One delta-position pass of one rule.
    Delta {
        /// Rule index in program order.
        rule: usize,
        /// Index into the rule's binding-step list: which binding literal
        /// ranges over the delta window this pass.
        delta_pos: usize,
    },
}

impl SemiUnit {
    fn rule(&self) -> usize {
        match *self {
            SemiUnit::Fallback { rule } | SemiUnit::Delta { rule, .. } => rule,
        }
    }
}

/// Read-only context of one delta pass, shared by every recursion level.
struct Pass<'a> {
    rule: &'a CompiledRule,
    blocked: &'a BlockedSet,
    interp: &'a IInterpretation,
    prev: &'a ZoneLens,
    curr: &'a ZoneLens,
    windows: &'a [Window],
}

/// Plan-step indices of a rule's binding literals, in plan order.
fn binding_steps(rule: &CompiledRule) -> Vec<usize> {
    (0..rule.plan.len())
        .filter(|&s| rule.body[rule.plan[s].lit].is_binding())
        .collect()
}

/// The window assignment for delta position `delta_pos`: earlier binding
/// steps range over the old window, the delta step over the delta, later
/// ones (and all non-binding steps) over the full extension.
fn windows_for(rule: &CompiledRule, steps: &[usize], delta_pos: usize) -> Vec<Window> {
    let mut windows = vec![Window::Full; rule.plan.len()];
    for (earlier, &e) in steps.iter().enumerate() {
        windows[e] = match earlier.cmp(&delta_pos) {
            std::cmp::Ordering::Less => Window::Old,
            std::cmp::Ordering::Equal => Window::Delta,
            std::cmp::Ordering::Greater => Window::Full,
        };
    }
    windows
}

/// True when one of the rule's negated literals gained new `-b` marks in
/// the last step, which can make groundings valid without any
/// binding-literal delta.
fn has_neg_delta(rule: &CompiledRule, prev: &ZoneLens, curr: &ZoneLens) -> bool {
    rule.body.iter().any(|l| {
        matches!(l, CompiledLiteral::Atom { kind: LitKind::Neg, atom }
            if curr.minus_len(atom.pred) > prev.minus_len(atom.pred))
    })
}

/// True when the binding literal at plan step `step` gained new marks in
/// the `(prev, curr]` delta of the zone it enumerates. A delta pass whose
/// delta literal gained nothing enumerates an empty window at that step
/// and therefore cannot emit a single grounding — but would still pay a
/// full scan of every earlier step's old window, which is what makes
/// small-update transactions O(state) instead of O(delta) without this
/// check.
fn has_delta(rule: &CompiledRule, step: usize, prev: &ZoneLens, curr: &ZoneLens) -> bool {
    match &rule.body[rule.plan[step].lit] {
        CompiledLiteral::Atom {
            kind: LitKind::Pos,
            atom,
        }
        | CompiledLiteral::Atom {
            kind: LitKind::Event(Sign::Insert),
            atom,
        } => curr.plus_len(atom.pred) > prev.plus_len(atom.pred),
        CompiledLiteral::Atom {
            kind: LitKind::Event(Sign::Delete),
            atom,
        } => curr.minus_len(atom.pred) > prev.minus_len(atom.pred),
        _ => false,
    }
}

/// The units of one semi-naive step, in sequential emission order. Delta
/// passes whose delta window is provably empty are planned out entirely —
/// the emitted action stream is identical with or without them, so only
/// the task count observes the difference.
fn plan_units(program: &CompiledProgram, prev: &ZoneLens, curr: &ZoneLens) -> Vec<SemiUnit> {
    let mut units = Vec::new();
    for (rule_idx, rule) in program.rules().iter().enumerate() {
        if rule.body.is_empty() {
            // Unconditional rules fire in the first step of a run only.
            continue;
        }
        if has_neg_delta(rule, prev, curr) {
            units.push(SemiUnit::Fallback { rule: rule_idx });
            continue;
        }
        for (delta_pos, &step) in binding_steps(rule).iter().enumerate() {
            if !has_delta(rule, step, prev, curr) {
                continue;
            }
            units.push(SemiUnit::Delta {
                rule: rule_idx,
                delta_pos,
            });
        }
    }
    units
}

/// Group unit indices into shard tasks by the predicate their rule's first
/// plan step enumerates (first-appearance order); rules enumerating no
/// shard get their own task. All of a rule's units land in one task.
fn plan_shards(program: &CompiledProgram, units: &[SemiUnit]) -> Vec<Vec<usize>> {
    let mut tasks: Vec<Vec<usize>> = Vec::new();
    let mut by_pred: FxHashMap<PredId, usize> = FxHashMap::default();
    let mut by_rule: FxHashMap<usize, usize> = FxHashMap::default();
    for (u, unit) in units.iter().enumerate() {
        let rule_idx = unit.rule();
        let rule = &program.rules()[rule_idx];
        match step0_pred(rule) {
            Some(p) => match by_pred.get(&p) {
                Some(&t) => tasks[t].push(u),
                None => {
                    by_pred.insert(p, tasks.len());
                    tasks.push(vec![u]);
                }
            },
            None => match by_rule.get(&rule_idx) {
                Some(&t) => tasks[t].push(u),
                None => {
                    by_rule.insert(rule_idx, tasks.len());
                    tasks.push(vec![u]);
                }
            },
        }
    }
    tasks
}

/// The predicate whose shard `rule`'s first plan step enumerates, if any.
fn step0_pred(rule: &CompiledRule) -> Option<PredId> {
    let planned = rule.plan.first()?;
    match &rule.body[planned.lit] {
        CompiledLiteral::Atom { kind, atom } if *kind != LitKind::Neg => Some(atom.pred),
        _ => None,
    }
}

/// Enumerate the groundings that became valid in the last step: every
/// non-blocked grounding using at least one mark from the `(prev, curr]`
/// delta. `prev` and `curr` are the zone sizes at the starts of the
/// previous and current steps.
pub fn fire_new(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    prev: &ZoneLens,
    curr: &ZoneLens,
) -> Vec<FiredAction> {
    fire_new_par(program, blocked, interp, prev, curr, None).0
}

/// [`fire_new`] with optional intra-step parallelism. With `threads` `None`
/// or `Some(1)` this is the sequential enumeration on the calling thread (no
/// pool is spun up); otherwise the shard tasks run on a scoped pool via
/// `crate::parallel::run_ordered` and the per-unit buffers are merged back
/// into unit order, making the output byte-identical to the sequential
/// stream. Returns the actions and the number of shard tasks (the same
/// number for every thread configuration).
pub fn fire_new_par(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    prev: &ZoneLens,
    curr: &ZoneLens,
    threads: Option<usize>,
) -> (Vec<FiredAction>, u64) {
    let requested = threads.unwrap_or(1).max(1);
    fire_new_metered(
        program, blocked, interp, prev, curr, threads, requested, None,
    )
}

/// [`fire_new_par`] with the pool size decoupled from the decomposition and
/// optional per-task span collection (the fixpoint loop's metered entry
/// point). The shard decomposition is fixed by the program and the step's
/// deltas; `workers` only caps how many threads run the tasks (the
/// host-parallelism clamp), and cannot change any output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fire_new_metered(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    prev: &ZoneLens,
    curr: &ZoneLens,
    threads: Option<usize>,
    workers: usize,
    spans: Option<&mut Vec<crate::metrics::TaskSpan>>,
) -> (Vec<FiredAction>, u64) {
    let threads = threads.unwrap_or(1).max(1);
    let units = plan_units(program, prev, curr);
    let tasks = plan_shards(program, &units);
    let n_tasks = tasks.len() as u64;
    let run_unit = |unit: SemiUnit, scratch: &mut Scratch, buf: &mut Vec<FiredAction>| match unit {
        SemiUnit::Fallback { rule } => {
            crate::gamma::fire_rule_in(&program.rules()[rule], blocked, interp, scratch, buf);
        }
        SemiUnit::Delta { rule, delta_pos } => {
            let rule = &program.rules()[rule];
            let steps = binding_steps(rule);
            run_delta(
                rule, blocked, interp, prev, curr, &steps, delta_pos, scratch, buf,
            );
        }
    };
    if threads == 1 && spans.is_none() {
        // Fast sequential path: units in order, no per-unit buffers.
        let mut out = Vec::new();
        let mut scratch = Scratch::new();
        for &unit in &units {
            run_unit(unit, &mut scratch, &mut out);
        }
        return (out, n_tasks);
    }
    let workers = if threads == 1 { 1 } else { workers };
    let tagged = crate::parallel::run_ordered(
        &tasks,
        workers,
        |task: &Vec<usize>, scratch, buf: &mut Vec<(usize, Vec<FiredAction>)>| {
            for &u in task {
                let mut ubuf = Vec::new();
                run_unit(units[u], scratch, &mut ubuf);
                buf.push((u, ubuf));
            }
        },
        spans,
    );
    (merge_units(units.len(), tagged), n_tasks)
}

/// Run one delta pass of one rule.
#[allow(clippy::too_many_arguments)]
fn run_delta(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    prev: &ZoneLens,
    curr: &ZoneLens,
    steps: &[usize],
    delta_pos: usize,
    scratch: &mut Scratch,
    out: &mut Vec<FiredAction>,
) {
    let windows = windows_for(rule, steps, delta_pos);
    let cx = Pass {
        rule,
        blocked,
        interp,
        prev,
        curr,
        windows: &windows,
    };
    scratch.prepare(rule);
    match_step(&cx, 0, scratch, out);
}

fn match_step(cx: &Pass<'_>, step: usize, scratch: &mut Scratch, out: &mut Vec<FiredAction>) {
    let rule = cx.rule;
    if step == rule.plan.len() {
        let subst: Box<[Code]> = scratch
            .bindings
            .iter()
            .map(|b| b.expect("safety guarantees total bindings"))
            .collect();
        let grounding = Grounding {
            rule: rule.id,
            subst,
        };
        if !cx.blocked.contains(&grounding) {
            let tuple = rule.head.instantiate(&grounding.subst);
            out.push(FiredAction {
                sign: rule.head_sign,
                pred: rule.head.pred,
                tuple,
                grounding,
            });
        }
        return;
    }
    let planned = rule.plan[step];
    let lit = &rule.body[planned.lit];
    let CompiledLiteral::Atom { kind, atom } = lit else {
        // A comparison guard: all variables bound, pure filter.
        if lit.eval_guard(cx.interp.vocab(), &scratch.bindings) {
            match_step(cx, step + 1, scratch, out);
        }
        return;
    };
    match *kind {
        LitKind::Neg => {
            let row = instantiate_bound(&atom.terms, &scratch.bindings);
            if validity::valid_neg(cx.interp, atom.pred, &row) {
                match_step(cx, step + 1, scratch, out);
            }
        }
        LitKind::Pos => {
            let key = scratch.take_key(step, &atom.terms, planned.mask);
            let pred = atom.pred;
            // Base rows are all "old": enumerate them except in the Delta
            // window (the base cannot contain delta rows).
            if cx.windows[step] != Window::Delta {
                if let Some(rel) = cx.interp.base().relation(pred) {
                    for t in rel.probe(planned.mask, &key) {
                        descend(cx, step, scratch, out, &atom.terms, t);
                    }
                }
            }
            if let Some(rel) = cx.interp.plus().relation(pred) {
                let (lo, hi) = window_range(
                    cx.windows[step],
                    cx.prev.plus_len(pred),
                    cx.curr.plus_len(pred),
                );
                for t in rel.probe_in_range(planned.mask, &key, lo, hi) {
                    if cx.interp.base().contains_row(pred, t) {
                        continue; // deduplicated against the base zone
                    }
                    descend(cx, step, scratch, out, &atom.terms, t);
                }
            }
            scratch.put_key(step, key);
        }
        LitKind::Event(sign) => {
            let key = scratch.take_key(step, &atom.terms, planned.mask);
            let pred = atom.pred;
            let (zone, plen, clen) = match sign {
                Sign::Insert => (
                    cx.interp.plus(),
                    cx.prev.plus_len(pred),
                    cx.curr.plus_len(pred),
                ),
                Sign::Delete => (
                    cx.interp.minus(),
                    cx.prev.minus_len(pred),
                    cx.curr.minus_len(pred),
                ),
            };
            if let Some(rel) = zone.relation(pred) {
                let (lo, hi) = window_range(cx.windows[step], plen, clen);
                for t in rel.probe_in_range(planned.mask, &key, lo, hi) {
                    descend(cx, step, scratch, out, &atom.terms, t);
                }
            }
            scratch.put_key(step, key);
        }
    }
}

fn window_range(w: Window, prev_len: u32, curr_len: u32) -> (u32, u32) {
    match w {
        Window::Old => (0, prev_len),
        Window::Delta => (prev_len, curr_len),
        Window::Full => (0, curr_len),
    }
}

fn descend(
    cx: &Pass<'_>,
    step: usize,
    scratch: &mut Scratch,
    out: &mut Vec<FiredAction>,
    terms: &[TermSlot],
    row: &[Code],
) {
    let mut newly: [u16; 8] = [0; 8];
    let mut n_newly = 0usize;
    let mut spill: Vec<u16> = Vec::new();
    let mut ok = true;
    for (pos, slot) in terms.iter().enumerate() {
        let v = row[pos];
        match *slot {
            TermSlot::Const(c) => {
                if c != v {
                    ok = false;
                    break;
                }
            }
            TermSlot::Var(s) => match scratch.bindings[s as usize] {
                Some(b) => {
                    if b != v {
                        ok = false;
                        break;
                    }
                }
                None => {
                    scratch.bindings[s as usize] = Some(v);
                    if n_newly < newly.len() {
                        newly[n_newly] = s;
                        n_newly += 1;
                    } else {
                        spill.push(s);
                    }
                }
            },
        }
    }
    if ok {
        match_step(cx, step + 1, scratch, out);
    }
    for &s in newly[..n_newly].iter().chain(spill.iter()) {
        scratch.bindings[s as usize] = None;
    }
}

fn instantiate_bound(terms: &[TermSlot], bindings: &[Option<Code>]) -> Box<[Code]> {
    terms
        .iter()
        .map(|t| match *t {
            TermSlot::Const(v) => v,
            TermSlot::Var(s) => bindings[s as usize].expect("negation scheduled after binding"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::{fire_all, fire_all_par};
    use park_storage::{FactStore, Value, Vocabulary};
    use park_syntax::parse_program;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn setup(rules: &str, facts: &str) -> (CompiledProgram, IInterpretation) {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        (program, IInterpretation::from_database(db))
    }

    fn grounding_set(fired: &[FiredAction]) -> HashSet<Grounding> {
        fired.iter().map(|f| f.grounding.clone()).collect()
    }

    /// Drive a run with both evaluators in lockstep and assert the
    /// per-step *new* groundings agree — and that the parallel variants
    /// reproduce the sequential streams byte for byte.
    fn lockstep(rules: &str, facts: &str, max_steps: usize) {
        let (program, mut naive_i) = setup(rules, facts);
        let blocked = BlockedSet::new();
        let mut semi_i = naive_i.clone();
        let mut seen: HashSet<Grounding> = HashSet::new();
        let mut prev = ZoneLens::capture(&semi_i);

        // Step 1: full evaluation on both sides.
        for step in 0..max_steps {
            let naive_fired = fire_all(&program, &blocked, &naive_i);
            let curr = ZoneLens::capture(&semi_i);
            let semi_fired = if step == 0 {
                fire_all(&program, &blocked, &semi_i)
            } else {
                fire_new(&program, &blocked, &semi_i, &prev, &curr)
            };
            for threads in [2, 4] {
                let par = if step == 0 {
                    fire_all_par(&program, &blocked, &semi_i, Some(threads)).0
                } else {
                    fire_new_par(&program, &blocked, &semi_i, &prev, &curr, Some(threads)).0
                };
                assert_eq!(
                    par, semi_fired,
                    "parallel ({threads} threads) diverged at step {step}"
                );
            }

            // New naive groundings must equal the semi-naive enumeration
            // (which may also re-produce a few old ones via the Full
            // windows only when... it must not: check exact equality of
            // "not seen before" sets and that semi produces no duplicates).
            let naive_new: HashSet<Grounding> = grounding_set(&naive_fired)
                .difference(&seen)
                .cloned()
                .collect();
            let semi_set = grounding_set(&semi_fired);
            if step > 0 {
                assert_eq!(
                    semi_fired.len(),
                    semi_set.len(),
                    "semi-naive produced duplicate groundings at step {step}"
                );
            }
            let semi_new: HashSet<Grounding> = semi_set.difference(&seen).cloned().collect();
            assert_eq!(naive_new, semi_new, "step {step} disagreement");
            seen.extend(grounding_set(&naive_fired));

            // Apply the step identically on both interpretations.
            let mut grew = false;
            for f in &naive_fired {
                if naive_i.insert_marked(f.sign, f.pred, &f.tuple) {
                    grew = true;
                }
                semi_i.insert_marked(f.sign, f.pred, &f.tuple);
            }
            prev = curr;
            if !grew {
                break;
            }
        }
    }

    #[test]
    fn lockstep_transitive_closure() {
        lockstep(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "edge(a, b). edge(b, c). edge(c, d). edge(d, a).",
            32,
        );
    }

    #[test]
    fn lockstep_with_negation() {
        lockstep(
            "p(X) -> +q(X). q(X), !r(X) -> +s(X). s(X) -> +r2(X).",
            "p(a). p(b). r(a).",
            16,
        );
    }

    #[test]
    fn lockstep_negation_flips_via_minus() {
        // !c(X) becomes valid only after -c(X) is derived: the fallback
        // path must catch the late grounding.
        lockstep(
            "p(X) -> -c(X). c(X), !c(X) -> +w(X). q(X), !c(X) -> +z(X).",
            "p(a). c(a). q(a).",
            16,
        );
    }

    #[test]
    fn lockstep_events() {
        lockstep(
            "p(X) -> +r(X). +r(X) -> -s(X). -s(X) -> +t(X).",
            "p(a). p(b). s(a). s(b).",
            16,
        );
    }

    #[test]
    fn lockstep_joins_and_constants() {
        lockstep(
            "e(X, Y), e(Y, Z) -> +p2(X, Z). p2(X, a) -> +hit(X). p2(X, Y), e(Y, W) -> +p3(X, W).",
            "e(a, b). e(b, a). e(b, c). e(c, a).",
            24,
        );
    }

    #[test]
    fn lockstep_with_guards() {
        lockstep(
            "edge(X, Y) -> +d(X, Y). d(X, Y), edge(Y, Z), X != Z -> +d(X, Z).
             val(N, Q), Q < 10 -> +small(N).",
            "edge(a, b). edge(b, c). edge(c, a). val(n, 3). val(m, 30).",
            24,
        );
    }

    #[test]
    fn lockstep_same_generation() {
        lockstep(
            "flat(X, Y) -> +sg(X, Y). up(X, X1), sg(X1, Y1), down(Y1, Y) -> +sg(X, Y).",
            "flat(m, n). up(a, m). down(n, b). up(x, a). down(b, y). up(q, x). down(y, w).",
            24,
        );
    }

    #[test]
    fn empty_body_rules_do_not_refire() {
        let (program, interp) = setup("-> +q(b).", "");
        // ... after compilation `-> +q(b)` is a plain rule; with_updates
        // isn't needed for this check. At a later step with no deltas it
        // must not fire again.
        let z = ZoneLens::capture(&interp);
        let fired = fire_new(&program, &BlockedSet::new(), &interp, &z, &z);
        assert!(fired.is_empty());
    }

    #[test]
    fn no_delta_means_no_firings() {
        let (program, mut interp) = setup("p(X) -> +q(X).", "p(a). p(b).");
        // Simulate step 1 applied.
        let before = ZoneLens::capture(&interp);
        for f in fire_all(&program, &BlockedSet::new(), &interp) {
            interp.insert_marked(f.sign, f.pred, &f.tuple);
        }
        let after = ZoneLens::capture(&interp);
        // Step 2 delta = the q marks; rule only reads p → nothing new.
        let fired = fire_new(&program, &BlockedSet::new(), &interp, &before, &after);
        assert!(fired.is_empty());
        // And with a zero-width delta window, likewise nothing.
        let fired = fire_new(&program, &BlockedSet::new(), &interp, &after, &after);
        assert!(fired.is_empty());
    }

    #[test]
    fn blocked_groundings_are_skipped() {
        let (program, mut interp) = setup("p(X) -> +q(X). q(X) -> +r(X).", "p(a).");
        let before = ZoneLens::capture(&interp);
        for f in fire_all(&program, &BlockedSet::new(), &interp) {
            interp.insert_marked(f.sign, f.pred, &f.tuple);
        }
        let after = ZoneLens::capture(&interp);
        let mut blocked = BlockedSet::new();
        let v = program.vocab();
        let a = v.encode(Value::Sym(v.sym("a")));
        blocked.insert(Grounding {
            rule: crate::compile::RuleId(1),
            subst: Box::from([a]),
        });
        let fired = fire_new(&program, &blocked, &interp, &before, &after);
        assert!(fired.is_empty(), "{fired:?}");
    }

    #[test]
    fn plan_units_sees_delta_beyond_prev_lens_length() {
        // A predicate that gained its first-ever marks after `prev` was
        // captured has no entry in the prev lens at all — `plus_len` /
        // `minus_len` must read it as 0, not skip the rule's delta pass.
        // `ZoneLens::default()` has zero-length vectors, so every pred id
        // exercises the out-of-range path.
        let (program, mut interp) = setup("p(X), q(X) -> +r(X).", "p(a).");
        let v = program.vocab();
        let q = v.lookup_pred("q").unwrap();
        let a = v.encode(Value::Sym(v.sym("a")));
        let prev = ZoneLens::default();
        assert!(interp.insert_marked(Sign::Insert, q, &[a]));
        let curr = ZoneLens::capture(&interp);
        let units = plan_units(&program, &prev, &curr);
        assert!(
            units.iter().any(|u| matches!(
                u,
                SemiUnit::Delta {
                    rule: 0,
                    delta_pos: 1
                }
            )),
            "q's delta pass must be planned even though q is past the end \
             of the prev lens: {units:?}"
        );
        // p gained nothing, so its delta position stays planned out.
        assert!(
            !units.iter().any(|u| matches!(
                u,
                SemiUnit::Delta {
                    rule: 0,
                    delta_pos: 0
                }
            )),
            "{units:?}"
        );
    }

    #[test]
    fn plan_units_tracks_the_zone_each_literal_enumerates() {
        // Growth in one zone of a predicate must only wake the delta
        // passes that enumerate that zone: a positive literal watches
        // `I⁺`, a `-q` event literal watches `I⁻`.
        let (program, mut interp) = setup(
            "p(X), q(X) -> +r(X). s(X), -q(X) -> +t(X).",
            "p(a). s(a). q(a).",
        );
        let v = program.vocab();
        let q = v.lookup_pred("q").unwrap();
        let a = v.encode(Value::Sym(v.sym("a")));

        // Minus-only growth: the Pos q literal (rule 0) stays asleep, the
        // -q event literal (rule 1) wakes.
        let prev = ZoneLens::capture(&interp);
        assert!(interp.insert_marked(Sign::Delete, q, &[a]));
        let curr = ZoneLens::capture(&interp);
        let units = plan_units(&program, &prev, &curr);
        assert!(
            !units
                .iter()
                .any(|u| matches!(u, SemiUnit::Delta { rule: 0, .. })),
            "minus growth must not schedule a plus-zone delta pass: {units:?}"
        );
        assert!(
            units.iter().any(|u| matches!(
                u,
                SemiUnit::Delta {
                    rule: 1,
                    delta_pos: 1
                }
            )),
            "{units:?}"
        );

        // Plus-only growth on a later step: the converse.
        let prev = ZoneLens::capture(&interp);
        assert!(interp.insert_marked(Sign::Insert, q, &[v.encode(Value::Sym(v.sym("b")))]));
        let curr = ZoneLens::capture(&interp);
        let units = plan_units(&program, &prev, &curr);
        assert!(
            units.iter().any(|u| matches!(
                u,
                SemiUnit::Delta {
                    rule: 0,
                    delta_pos: 1
                }
            )),
            "{units:?}"
        );
        assert!(
            !units
                .iter()
                .any(|u| matches!(u, SemiUnit::Delta { rule: 1, .. })),
            "plus growth must not schedule a minus-zone delta pass: {units:?}"
        );
    }

    #[test]
    fn task_count_is_thread_independent() {
        let (program, mut interp) = setup(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "edge(a, b). edge(b, c).",
        );
        let before = ZoneLens::capture(&interp);
        for f in fire_all(&program, &BlockedSet::new(), &interp) {
            interp.insert_marked(f.sign, f.pred, &f.tuple);
        }
        let after = ZoneLens::capture(&interp);
        let (seq, seq_tasks) = fire_new_par(
            &program,
            &BlockedSet::new(),
            &interp,
            &before,
            &after,
            Some(1),
        );
        for threads in [2, 4] {
            let (par, par_tasks) = fire_new_par(
                &program,
                &BlockedSet::new(),
                &interp,
                &before,
                &after,
                Some(threads),
            );
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_tasks, seq_tasks, "threads={threads}");
        }
    }
}
