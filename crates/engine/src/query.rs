//! Conjunctive queries over database instances and i-interpretations.
//!
//! A query is a rule body evaluated for its satisfying substitutions —
//! positive and negated conditions, event literals (meaningful when the
//! target is a mid-run i-interpretation), and comparison guards all work,
//! with the same safety discipline as rule bodies. Under the hood the
//! query compiles into a rule with a synthetic head capturing the query's
//! variables and runs through the ordinary Γ machinery, so query
//! answering exercises exactly the planner and matcher the engine uses.
//!
//! ```
//! use park_engine::query::Query;
//! use park_storage::{FactStore, Vocabulary};
//!
//! let vocab = Vocabulary::new();
//! let db = FactStore::from_source(
//!     vocab.clone(),
//!     "emp(ann). emp(bob). active(ann).",
//! ).unwrap();
//! let q = Query::parse(&vocab, "?- emp(X), !active(X).").unwrap();
//! let rows = q.run_on_database(&db);
//! assert_eq!(q.render_rows(&rows), vec!["X = bob"]);
//! ```

use crate::compile::CompiledProgram;
use crate::error::{EngineError, EngineResult};
use crate::gamma;
use crate::grounding::BlockedSet;
use crate::interp::IInterpretation;
use park_storage::{FactStore, Tuple, Value, Vocabulary};
use park_syntax::{parse_query, Atom, BodyLiteral, Head, Program, Rule, Sign, Term};
use std::sync::Arc;

/// A compiled conjunctive query.
#[derive(Debug, Clone)]
pub struct Query {
    program: CompiledProgram,
    /// The distinct variable names, in first-occurrence order — the
    /// columns of each answer row.
    vars: Vec<String>,
}

/// The reserved head-predicate prefix queries compile into; the arity is
/// appended so queries of different widths coexist in one vocabulary.
const ANSWER_PRED: &str = "__park_query_answer";

impl Query {
    /// Compile a parsed body into a query against `vocab`.
    pub fn new(vocab: &Arc<Vocabulary>, body: Vec<BodyLiteral>) -> EngineResult<Query> {
        // Distinct variables in first-occurrence order become the head.
        let mut vars: Vec<String> = Vec::new();
        for lit in &body {
            for v in lit.vars() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let head = Head {
            sign: Sign::Insert,
            atom: Atom::new(
                format!("{ANSWER_PRED}_{}", vars.len()),
                vars.iter().map(|v| Term::var(v.clone())).collect(),
            ),
        };
        let rule = Rule::new(body, head).named("query");
        let program =
            CompiledProgram::compile(Arc::clone(vocab), &Program::from_rules(vec![rule]))?;
        Ok(Query { program, vars })
    }

    /// Parse and compile a query source such as `"?- p(X), !q(X)."`.
    pub fn parse(vocab: &Arc<Vocabulary>, src: &str) -> EngineResult<Query> {
        let body = parse_query(src).map_err(|e| {
            EngineError::Storage(park_storage::StorageError::Snapshot(e.to_string()))
        })?;
        Query::new(vocab, body)
    }

    /// The answer columns (distinct variables, first-occurrence order).
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Evaluate against an i-interpretation (event literals see its
    /// marks). Each row assigns the query's variables in order.
    ///
    /// The query's own plan may probe predicates the hosting program never
    /// indexes, so the indexes the plan requests are installed on `interp`
    /// first (a no-op when already present) — without this, joins silently
    /// fall back to full-relation scans.
    pub fn run(&self, interp: &mut IInterpretation) -> Vec<Tuple> {
        self.ensure_indexes(interp);
        let fired = gamma::fire_all(&self.program, &BlockedSet::new(), interp);
        // Decode at the answer boundary and sort with the vocabulary-aware
        // comparator (symbols by name): raw `Value` order ranks symbols by
        // SymId, i.e. intern order, so the same database restored into a
        // session that interned constants in a different order would answer
        // in a different row order.
        let vocab = self.program.vocab();
        let mut rows: Vec<Tuple> = fired.iter().map(|f| vocab.decode_row(&f.tuple)).collect();
        rows.sort_by(|a, b| vocab.cmp_tuples(a, b));
        rows.dedup();
        rows
    }

    /// Install the indexes this query's plan probes through (shared by
    /// [`Query::run`] and [`Query::run_on_database`]).
    fn ensure_indexes(&self, interp: &mut IInterpretation) {
        for req in self.program.index_requests() {
            interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
        }
    }

    /// Evaluate against a plain database (no marks: positive literals are
    /// membership, negation is closed-world, event literals never match).
    pub fn run_on_database(&self, db: &FactStore) -> Vec<Tuple> {
        let mut interp = IInterpretation::from_database(db.clone());
        self.run(&mut interp)
    }

    /// True if the query has at least one answer.
    pub fn holds_on(&self, db: &FactStore) -> bool {
        !self.run_on_database(db).is_empty()
    }

    /// Render rows as `X = a, Y = 3` strings.
    pub fn render_rows(&self, rows: &[Tuple]) -> Vec<String> {
        let vocab = self.program.vocab();
        rows.iter()
            .map(|t| {
                if self.vars.is_empty() {
                    "true".to_string()
                } else {
                    self.vars
                        .iter()
                        .enumerate()
                        .map(|(i, v)| format!("{v} = {}", vocab.constant(t.get(i))))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            })
            .collect()
    }
}

/// Resolve the value of variable `name` in a row of `query`.
pub fn row_value(query: &Query, row: &Tuple, name: &str) -> Option<Value> {
    query
        .vars()
        .iter()
        .position(|v| v == name)
        .map(|i| row.get(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(src: &str) -> (Arc<Vocabulary>, FactStore) {
        let vocab = Vocabulary::new();
        let store = FactStore::from_source(Arc::clone(&vocab), src).unwrap();
        (vocab, store)
    }

    #[test]
    fn single_literal_query() {
        let (vocab, store) = db("p(a). p(b). q(c).");
        let q = Query::parse(&vocab, "p(X)").unwrap();
        let rows = q.run_on_database(&store);
        assert_eq!(q.render_rows(&rows), vec!["X = a", "X = b"]);
        assert_eq!(q.vars(), &["X".to_string()]);
    }

    #[test]
    fn join_with_negation_and_guard() {
        let (vocab, store) = db(
            "emp(a). emp(b). emp(c). active(a). active(b). payroll(a, 10). \
             payroll(b, 200). payroll(c, 300).",
        );
        let q = Query::parse(&vocab, "?- emp(X), active(X), payroll(X, S), S > 100.").unwrap();
        let rows = q.run_on_database(&store);
        assert_eq!(q.render_rows(&rows), vec!["X = b, S = 200"]);
        let q = Query::parse(&vocab, "?- emp(X), !active(X).").unwrap();
        let rows = q.run_on_database(&store);
        assert_eq!(q.render_rows(&rows), vec!["X = c"]);
    }

    #[test]
    fn ground_queries_answer_true_or_nothing() {
        let (vocab, store) = db("p(a).");
        let q = Query::parse(&vocab, "p(a)").unwrap();
        assert_eq!(q.render_rows(&q.run_on_database(&store)), vec!["true"]);
        assert!(q.holds_on(&store));
        let q = Query::parse(&vocab, "p(b)").unwrap();
        assert!(q.run_on_database(&store).is_empty());
        assert!(!q.holds_on(&store));
    }

    #[test]
    fn event_literals_query_marks() {
        let (vocab, store) = db("s(a).");
        let mut interp = IInterpretation::from_database(store.clone());
        let s = vocab.lookup_pred("s").unwrap();
        let row = [vocab.encode(Value::Sym(vocab.sym("a")))];
        interp.insert_marked(Sign::Delete, s, &row);
        let q = Query::parse(&vocab, "-s(X)").unwrap();
        assert_eq!(q.render_rows(&q.run(&mut interp)), vec!["X = a"]);
        // Against the plain database the event never matches.
        assert!(q.run_on_database(&store).is_empty());
    }

    #[test]
    fn run_installs_the_plan_requested_indexes() {
        // Regression: `run` used to evaluate against a caller-supplied
        // interpretation without installing the plan's `index_requests()`
        // (unlike `run_on_database`), so mid-run queries joined through the
        // unindexed scan fallback.
        let (vocab, store) = db("p(a). p(b). e(a, b). e(a, c). e(b, d).");
        let q = Query::parse(&vocab, "?- p(X), e(X, Y).").unwrap();
        let requests = q.program.index_requests();
        assert!(
            !requests.is_empty(),
            "the join plan must probe through at least one index"
        );
        let mut interp = IInterpretation::from_database(store);
        for req in requests {
            let rel = interp.zone(req.zone).relation(req.pred);
            assert!(
                rel.is_none_or(|r| !r.has_index(req.mask)),
                "precondition: the index is not there before the query runs"
            );
        }
        let rows = q.run(&mut interp);
        assert_eq!(rows.len(), 3);
        for req in requests {
            let rel = interp
                .zone(req.zone)
                .relation(req.pred)
                .expect("probed relation exists");
            assert!(
                rel.has_index(req.mask),
                "the indexed probe path is taken by `run` itself"
            );
        }
    }

    #[test]
    fn unsafe_queries_are_rejected() {
        let (vocab, _) = db("p(a).");
        assert!(Query::parse(&vocab, "!p(X)").is_err());
        assert!(Query::parse(&vocab, "p(X), Y > 3").is_err());
        assert!(Query::parse(&vocab, "this is not a query").is_err());
    }

    #[test]
    fn duplicate_rows_are_collapsed() {
        let (vocab, store) = db("e(a, b). e(a, c).");
        // X occurs twice through the join but answers project onto X only.
        let q = Query::parse(&vocab, "e(X, Y)").unwrap();
        assert_eq!(q.run_on_database(&store).len(), 2);
        let q2 = Query::parse(&vocab, "e(a, Y), e(a, Z)").unwrap();
        // 2x2 combinations, all distinct as (Y, Z) pairs.
        assert_eq!(q2.run_on_database(&store).len(), 4);
    }

    #[test]
    fn queries_of_different_widths_share_a_vocabulary() {
        let (vocab, store) = db("e(a, b). p(a).");
        let q1 = Query::parse(&vocab, "p(X)").unwrap();
        let q2 = Query::parse(&vocab, "e(X, Y)").unwrap();
        let q3 = Query::parse(&vocab, "p(a)").unwrap();
        assert_eq!(q1.run_on_database(&store).len(), 1);
        assert_eq!(q2.run_on_database(&store).len(), 1);
        assert_eq!(q3.run_on_database(&store).len(), 1);
    }

    #[test]
    fn row_order_survives_cross_session_restore() {
        // Regression: rows used to sort in raw `Value` (SymId) order, so a
        // snapshot taken in one session and restored into a fresh session
        // with a different intern order answered in a different row order.
        let run = |src: &str| {
            let (vocab, store) = db(src);
            let q = Query::parse(&vocab, "p(X)").unwrap();
            q.render_rows(&q.run_on_database(&store))
        };
        // Same database, opposite intern orders (a snapshot restores in
        // sorted order; the live session interned zeta first).
        assert_eq!(run("p(zeta). p(alpha)."), run("p(alpha). p(zeta)."));
        assert_eq!(run("p(zeta). p(alpha)."), vec!["X = alpha", "X = zeta"]);
        // Spilled big integers break raw code order too; decoded rows must
        // still sort numerically with symbols first.
        let big = (1i64 << 40).to_string();
        let rows = run(&format!("p({big}). p(7). p(sym)."));
        assert_eq!(
            rows,
            vec!["X = sym".to_string(), "X = 7".into(), format!("X = {big}")]
        );
    }

    #[test]
    fn row_value_lookup() {
        let (vocab, store) = db("payroll(a, 10).");
        let q = Query::parse(&vocab, "payroll(X, S)").unwrap();
        let rows = q.run_on_database(&store);
        assert_eq!(row_value(&q, &rows[0], "S"), Some(Value::Int(10)));
        assert_eq!(row_value(&q, &rows[0], "Nope"), None);
    }
}
