//! The PARK evaluation loop: the transition operator Δ iterated to its
//! fixpoint ω, followed by `incorp` (Sections 4.2–4.3).
//!
//! ```text
//! PARK(D, P, U) = incorp(int(ω_{P_U}(⟨∅, D⟩)))
//! ```
//!
//! One Δ application either performs a consistent inflationary Γ step, or —
//! on inconsistency — resolves the detected conflicts through the `SELECT`
//! policy, extends the blocked set with the losing groundings, and restarts
//! the inflationary computation from the original database `D = I°`,
//! discarding every consequence of the invalidated marks.
//!
//! Termination is a checked invariant: every restart strictly grows the
//! blocked set (else [`EngineError::NoProgress`]), and the blocked set is
//! bounded by the finite number of rule groundings.

use crate::compile::CompiledProgram;
use crate::conflict::{collect_conflicts, ConflictResolver, Provenance, Resolution, SelectContext};
use crate::error::{EngineError, EngineResult};
use crate::gamma;
use crate::grounding::BlockedSet;
use crate::interp::IInterpretation;
use crate::metrics::{
    FinishEvent, MetricsSink, ReplayEvent, RestartEvent, StepEvent, StepOutcome, StorageCounters,
    TaskSpan,
};
use crate::options::{EngineOptions, EvaluationMode, ResolutionScope};
use crate::replay::{Replayer, StepLog};
use crate::seminaive::{self, ZoneLens};
use crate::stats::RunStats;
use crate::trace::{Trace, TraceEvent};
use park_storage::{FactStore, UpdateSet, Vocabulary};
use park_syntax::Program;
use std::sync::Arc;
use std::time::Instant;

/// The result of a PARK evaluation.
#[derive(Debug, Clone)]
pub struct ParkOutcome {
    /// The result database instance `PARK(D, P, U)`.
    pub database: FactStore,
    /// The final i-interpretation `int(ω)` (consistent by construction).
    pub interpretation: IInterpretation,
    /// The final blocked set `B`.
    pub blocked: BlockedSet,
    /// The program actually evaluated (`P_U` when updates were supplied) —
    /// needed to render groundings in `blocked`.
    pub program: CompiledProgram,
    /// Evaluation counters.
    pub stats: RunStats,
    /// The execution trace (empty unless `EngineOptions::trace`).
    pub trace: Trace,
    /// The inserting heads fired by the program's own rules (transaction
    /// `tx` rules excluded) during the final run — the seed for a
    /// cross-transaction [`crate::incremental::WarmState`]. Only populated
    /// by [`Engine::run_retaining`]; `None` everywhere else, so the ordinary
    /// paths pay nothing for it.
    pub program_marks: Option<FactStore>,
}

impl ParkOutcome {
    /// The blocked groundings rendered in the paper's notation, sorted.
    pub fn blocked_display(&self) -> Vec<String> {
        self.blocked.display(&self.program)
    }

    /// The run's *mode-independent observables*, rendered one per line:
    /// the final database (sorted), the blocked set, the counters the
    /// semantics fixes (restarts, Γ steps, conflicts resolved, blocked
    /// instances), and the full trace event stream as JSON.
    ///
    /// Two evaluations of the same `PARK(D, P)` instance must produce
    /// byte-identical fingerprints no matter which evaluation mode, thread
    /// count, or restart strategy they ran under — this is the comparison
    /// surface of the differential test harness (`park-testkit`) and of
    /// the warm-vs-cold / parallel-vs-sequential identity tests.
    /// Scheduling counters (`eval_tasks`, `replayed_steps`, timings) are
    /// deliberately excluded. The trace line is only meaningful for runs
    /// with `EngineOptions::trace` enabled.
    pub fn fingerprint(&self) -> String {
        format!(
            "database: {}\nblocked: {}\nrestarts: {}\ngamma_steps: {}\n\
             conflicts_resolved: {}\nblocked_instances: {}\ntrace:\n{}",
            self.database.sorted_display().join(", "),
            self.blocked_display().join(", "),
            self.stats.restarts,
            self.stats.gamma_steps,
            self.stats.conflicts_resolved,
            self.stats.blocked_instances,
            self.trace.to_json(),
        )
    }
}

/// A compiled PARK program ready to evaluate against database instances.
#[derive(Debug, Clone)]
pub struct Engine {
    program: CompiledProgram,
    options: EngineOptions,
}

impl Engine {
    /// Compile `program` against `vocab` with default options.
    pub fn new(vocab: Arc<Vocabulary>, program: &Program) -> EngineResult<Self> {
        Self::with_options(vocab, program, EngineOptions::default())
    }

    /// Compile with explicit options.
    pub fn with_options(
        vocab: Arc<Vocabulary>,
        program: &Program,
        options: EngineOptions,
    ) -> EngineResult<Self> {
        Ok(Engine {
            program: CompiledProgram::compile(vocab, program)?,
            options,
        })
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Evaluate `PARK(D, P)` — condition–action rules, no transaction
    /// updates.
    pub fn park(
        &self,
        db: &FactStore,
        resolver: &mut dyn ConflictResolver,
    ) -> EngineResult<ParkOutcome> {
        self.run(db, &UpdateSet::empty(), resolver)
    }

    /// [`Engine::park`] with evaluation events reported into `sink`.
    pub fn park_with_metrics(
        &self,
        db: &FactStore,
        resolver: &mut dyn ConflictResolver,
        sink: &mut dyn MetricsSink,
    ) -> EngineResult<ParkOutcome> {
        self.run_with_metrics(db, &UpdateSet::empty(), resolver, sink)
    }

    /// Evaluate `PARK(D, P, U)` — full event–condition–action semantics.
    ///
    /// `db` must share the engine's vocabulary (they were built against the
    /// same `Arc<Vocabulary>`).
    pub fn run(
        &self,
        db: &FactStore,
        updates: &UpdateSet,
        resolver: &mut dyn ConflictResolver,
    ) -> EngineResult<ParkOutcome> {
        self.run_inner(db, updates, resolver, None, false)
    }

    /// [`Engine::run`] with evaluation events reported into `sink` (see
    /// `crate::metrics`). The sink's [`MetricsSink::enabled`] is consulted
    /// once, up front: a disabled sink ([`crate::metrics::NoopMetrics`])
    /// makes this take exactly the unmetered [`Engine::run`] path — no
    /// per-step timing, no span buffers, no allocations.
    pub fn run_with_metrics(
        &self,
        db: &FactStore,
        updates: &UpdateSet,
        resolver: &mut dyn ConflictResolver,
        sink: &mut dyn MetricsSink,
    ) -> EngineResult<ParkOutcome> {
        let sink = sink.enabled().then_some(sink);
        self.run_inner(db, updates, resolver, sink, false)
    }

    /// [`Engine::run_with_metrics`] that additionally retains the inserting
    /// heads fired by non-update rules in [`ParkOutcome::program_marks`] —
    /// what `crate::incremental::WarmState::build` needs to seed a
    /// cross-transaction warm state, both on the initial cold run and when
    /// rebuilding after a warm bail (a deletion colliding with a derived
    /// fact poisons the warm state; the cold rerun's retained marks restore
    /// it). Results are byte-identical to the ordinary run; the retained
    /// store is extra output, not a behavior change.
    pub fn run_retaining(
        &self,
        db: &FactStore,
        updates: &UpdateSet,
        resolver: &mut dyn ConflictResolver,
        sink: &mut dyn MetricsSink,
    ) -> EngineResult<ParkOutcome> {
        let sink = sink.enabled().then_some(sink);
        self.run_inner(db, updates, resolver, sink, true)
    }

    fn run_inner(
        &self,
        db: &FactStore,
        updates: &UpdateSet,
        resolver: &mut dyn ConflictResolver,
        mut sink: Option<&mut dyn MetricsSink>,
        retain: bool,
    ) -> EngineResult<ParkOutcome> {
        assert!(
            Arc::ptr_eq(db.vocab(), self.program.vocab()),
            "database and program must share one Vocabulary"
        );
        let started = Instant::now();
        let working = self.program.with_updates(updates);
        // Compiled evaluation lowers `P_U` once per run-set: the cost model
        // reads only the immutable starting database, so the lowered
        // program is shared by every restart and deterministic across
        // hosts and thread counts (see `crate::lower`).
        let lowered = (self.options.evaluation == EvaluationMode::Compiled)
            .then(|| crate::lower::lower(&working, db));
        // Statically conflict-free programs never need provenance or
        // conflict collection; the run degenerates to the pure inflationary
        // fixpoint. A refinement certificate (`crate::refine`) extends the
        // same fast path to programs whose unifiable-head pairs are all
        // provably impossible. The certificate must cover the program that
        // actually runs — `P_U`, updates included.
        let mut certified = false;
        let statically_safe = !working.possibly_conflicting()
            || (self.options.conflict_certificates && {
                certified = crate::refine::certify_conflict_free(
                    &working,
                    crate::refine::AnalysisVariant::Faithful,
                )
                .is_some();
                certified
            });
        let policy_name = resolver.name().to_string();
        // Statically conflict-free programs never restart, so capturing a
        // firing log for them would be pure overhead.
        let warm = self.options.warm_restarts && !statically_safe;
        // Host-parallelism clamp: task decomposition follows the *requested*
        // thread count (so `eval_tasks` and the merged firing stream are
        // host-independent), but no more worker threads than the host can
        // actually run in parallel are spawned.
        let requested_threads = self.options.parallelism.unwrap_or(1).max(1);
        let effective_threads = requested_threads.min(crate::parallel::host_parallelism());
        let mut blocked = BlockedSet::new();
        let mut stats = RunStats {
            effective_parallelism: effective_threads,
            certified_conflict_free: certified,
            lowered_ops: lowered.as_ref().map_or(0, |l| l.op_count()),
            index_picks: lowered.as_ref().map_or(0, |l| l.index_picks()),
            ..RunStats::default()
        };
        let mut trace = Trace::new();
        let tracing = self.options.trace;
        let metered = sink.is_some();
        // Storage counters are process-wide monotonic atomics; the finish
        // event reports the delta over this evaluation. Unmetered runs skip
        // the reads entirely (the zero-overhead contract).
        let storage_at_start = if metered {
            StorageCounters::now()
        } else {
            StorageCounters::default()
        };
        let mut spans: Vec<TaskSpan> = Vec::new();
        // Provenance outlives the runs: `clear` keeps the per-atom maps'
        // allocations for the next run to reuse.
        let mut provenance = Provenance::new();
        // Warm restarts: the previous run's firing log, replayed against
        // the grown blocked set (see `crate::replay`).
        let mut replayer: Option<Replayer> = None;
        // Retained program-derived heads (see `Engine::run_retaining`).
        let mut program_marks = retain.then(|| FactStore::new(Arc::clone(self.program.vocab())));

        // The evaluator's index requests: under compiled evaluation the
        // cost model's selections replace the interpreted planner's.
        let index_requests: &[crate::compile::IndexRequest] = match &lowered {
            Some(lp) => lp.index_requests(),
            None => working.index_requests(),
        };
        // Build base-zone indexes once, *outside* the restart loop: every
        // restart clones this pre-indexed store, and `ensure_index` on a
        // clone whose shared shard already carries the index is a no-copy
        // no-op. Without the hoist each restart would COW-clone and
        // re-index every probed base shard from scratch.
        let seed_db = {
            let mut seed = db.clone();
            for req in index_requests {
                if req.zone == crate::validity::MarkZone::Base {
                    seed.ensure_index(req.pred, req.mask);
                }
            }
            seed
        };

        let final_interp = 'outer: loop {
            // (Re)start the inflationary computation from I° = D.
            let run = stats.restarts + 1;
            if tracing {
                trace.push(TraceEvent::RunStarted { run });
            }
            let mut interp = IInterpretation::from_database(seed_db.clone());
            for req in index_requests {
                interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
            }
            provenance.clear();
            if let Some(marks) = &mut program_marks {
                // A restart discards every consequence of the prior run.
                marks.clear();
            }
            let mut step_log = StepLog::new();
            let mut step_in_run: u64 = 0;
            let mut prev_lens = ZoneLens::capture(&interp);

            loop {
                if stats.gamma_steps >= self.options.max_steps {
                    return Err(EngineError::StepLimit {
                        limit: self.options.max_steps,
                    });
                }
                let step_started = metered.then(Instant::now);
                if metered {
                    spans.clear();
                }
                let replayed = replayer.as_mut().and_then(|r| {
                    let step = r.next_step(&blocked);
                    if let Some(d) = r.divergence_step() {
                        stats.replay_divergence_step = Some(d);
                    }
                    step
                });
                let served_from_log = replayed.is_some();
                let (fired, tasks) = match replayed {
                    Some(fired) => {
                        // Served from the log: the filtered vector is
                        // exactly what live evaluation would fire here.
                        // Keep the delta boundary current so a live
                        // hand-off after the log sees the right
                        // (prev, curr] window (semi-naive and compiled
                        // both window on it).
                        if self.options.evaluation != EvaluationMode::Naive {
                            prev_lens = ZoneLens::capture(&interp);
                        }
                        stats.replayed_steps += 1;
                        (fired, 0)
                    }
                    None => {
                        let threads = self.options.parallelism;
                        let span_out = if metered { Some(&mut spans) } else { None };
                        match self.options.evaluation {
                            EvaluationMode::Naive => gamma::fire_all_metered(
                                &working,
                                &blocked,
                                &interp,
                                threads,
                                effective_threads,
                                span_out,
                            ),
                            EvaluationMode::SemiNaive => {
                                if step_in_run == 0 {
                                    gamma::fire_all_metered(
                                        &working,
                                        &blocked,
                                        &interp,
                                        threads,
                                        effective_threads,
                                        span_out,
                                    )
                                } else {
                                    let curr = ZoneLens::capture(&interp);
                                    let fired = seminaive::fire_new_metered(
                                        &working,
                                        &blocked,
                                        &interp,
                                        &prev_lens,
                                        &curr,
                                        threads,
                                        effective_threads,
                                        span_out,
                                    );
                                    prev_lens = curr;
                                    fired
                                }
                            }
                            EvaluationMode::Compiled => {
                                let lowered = lowered
                                    .as_ref()
                                    .expect("compiled mode always lowers the program");
                                if step_in_run == 0 {
                                    crate::bytecode::fire_all_lowered_metered(
                                        lowered,
                                        &blocked,
                                        &interp,
                                        threads,
                                        effective_threads,
                                        span_out,
                                    )
                                } else {
                                    let curr = ZoneLens::capture(&interp);
                                    let fired = crate::bytecode::fire_new_lowered_metered(
                                        lowered,
                                        &blocked,
                                        &interp,
                                        &prev_lens,
                                        &curr,
                                        threads,
                                        effective_threads,
                                        span_out,
                                    );
                                    prev_lens = curr;
                                    fired
                                }
                            }
                        }
                    }
                };
                stats.eval_tasks += tasks;
                stats.groundings_fired += fired.len() as u64;
                // Fast path: a conflict needs an insertion side and a
                // deletion side (in this step's firings or the run's marks);
                // if either polarity is absent everywhere, skip the
                // grouping pass entirely.
                let may_conflict = !statically_safe
                    && (!interp.minus().is_empty()
                        || fired.iter().any(|f| f.sign == park_syntax::Sign::Delete))
                    && (!interp.plus().is_empty()
                        || fired.iter().any(|f| f.sign == park_syntax::Sign::Insert));
                let conflicts = if may_conflict {
                    collect_conflicts(working.vocab(), &fired, &provenance)
                } else {
                    Vec::new()
                };
                let step_nanos = step_started.map_or(0, |t| t.elapsed().as_nanos() as u64);

                if conflicts.is_empty() {
                    // Γ_{P,B}(I) is consistent: take the inflationary step.
                    stats.gamma_steps += 1;
                    step_in_run += 1;
                    let mut added_count = 0usize;
                    let mut added_display: Vec<String> = Vec::new();
                    if let Some(marks) = &mut program_marks {
                        for f in &fired {
                            if f.sign == park_syntax::Sign::Insert
                                && !working.rule(f.grounding.rule).is_update
                            {
                                marks.insert_row(f.pred, &f.tuple);
                            }
                        }
                    }
                    for f in &fired {
                        if interp.insert_marked(f.sign, f.pred, &f.tuple) {
                            added_count += 1;
                            if tracing {
                                added_display.push(format!(
                                    "{}{}",
                                    f.sign,
                                    working.vocab().display_row(f.pred, &f.tuple)
                                ));
                            }
                        }
                    }
                    if !statically_safe {
                        provenance.record_all(&fired);
                    }
                    stats.peak_marked_atoms = stats.peak_marked_atoms.max(interp.marked_len());
                    if let Some(s) = sink.as_mut() {
                        s.step(&StepEvent {
                            run,
                            step: step_in_run,
                            fired: &fired,
                            replayed: served_from_log,
                            tasks,
                            nanos: step_nanos,
                            spans: &spans,
                            outcome: if added_count == 0 {
                                StepOutcome::Fixpoint
                            } else {
                                StepOutcome::Applied
                            },
                            marked: interp.marked_len(),
                        });
                    }
                    if added_count == 0 {
                        // Γ_{P,B}(I) = I: the fixpoint ω is reached.
                        if tracing {
                            trace.push(TraceEvent::Fixpoint {
                                run,
                                interp: interp.display(),
                                blocked: blocked.display(&working),
                            });
                            if let Some(r) = &replayer {
                                trace.push_note(replay_note(run, r));
                            }
                        }
                        if let (Some(s), Some(r)) = (sink.as_mut(), &replayer) {
                            s.replay(&ReplayEvent {
                                run,
                                served: r.served(),
                                divergence_step: r.divergence_step(),
                            });
                        }
                        break 'outer interp;
                    }
                    if tracing {
                        trace.push(TraceEvent::Step {
                            run,
                            step: step_in_run,
                            interp: interp.display(),
                            added: added_display,
                        });
                    }
                    if warm {
                        step_log.push_step(fired);
                    }
                } else {
                    // Conflict resolution: block losers, restart from D.
                    if stats.restarts >= self.options.max_restarts {
                        return Err(EngineError::RestartLimit {
                            limit: self.options.max_restarts,
                        });
                    }
                    if let Some(s) = sink.as_mut() {
                        s.step(&StepEvent {
                            run,
                            step: step_in_run + 1,
                            fired: &fired,
                            replayed: served_from_log,
                            tasks,
                            nanos: step_nanos,
                            spans: &spans,
                            outcome: StepOutcome::Conflict,
                            marked: interp.marked_len(),
                        });
                    }
                    let (selected, deferred) = match self.options.scope {
                        ResolutionScope::All => conflicts.split_at(conflicts.len()),
                        ResolutionScope::One => conflicts.split_at(1),
                    };
                    if tracing {
                        let atom = |c: &crate::conflict::Conflict| {
                            working.vocab().display_fact(c.pred, &c.tuple)
                        };
                        trace.push(TraceEvent::Inconsistent {
                            run,
                            step: step_in_run + 1,
                            atoms: selected.iter().map(atom).collect(),
                            deferred: deferred.iter().map(atom).collect(),
                        });
                    }
                    let ctx = SelectContext {
                        database: db,
                        program: &working,
                        interp: &interp,
                    };
                    let mut resolutions_meta: Vec<(String, Resolution, u64)> = Vec::new();
                    for c in selected {
                        let resolution =
                            resolver
                                .select(&ctx, c)
                                .map_err(|message| EngineError::Resolver {
                                    policy: policy_name.clone(),
                                    message,
                                })?;
                        stats.conflicts_resolved += 1;
                        let mut newly: Vec<String> = Vec::new();
                        let mut newly_count: u64 = 0;
                        let mut progressed = false;
                        for g in c.losing_side(resolution) {
                            if blocked.insert(g.clone()) {
                                progressed = true;
                                newly_count += 1;
                                if tracing {
                                    newly.push(g.display(&working));
                                }
                            }
                        }
                        if !progressed {
                            return Err(EngineError::NoProgress {
                                atom: working.vocab().display_fact(c.pred, &c.tuple),
                            });
                        }
                        if metered {
                            resolutions_meta.push((
                                working.vocab().display_fact(c.pred, &c.tuple),
                                resolution,
                                newly_count,
                            ));
                        }
                        if tracing {
                            trace.push(TraceEvent::ConflictResolved {
                                conflict: c.display(&working),
                                policy: policy_name.clone(),
                                resolution,
                                blocked: newly,
                            });
                        }
                    }
                    if let Some(s) = sink.as_mut() {
                        s.restart(&RestartEvent {
                            run,
                            step: step_in_run + 1,
                            scope: self.options.scope,
                            policy: &policy_name,
                            resolutions: &resolutions_meta,
                            deferred: deferred.len() as u64,
                        });
                        if let Some(r) = &replayer {
                            s.replay(&ReplayEvent {
                                run,
                                served: r.served(),
                                divergence_step: r.divergence_step(),
                            });
                        }
                    }
                    if tracing {
                        if let Some(r) = &replayer {
                            trace.push_note(replay_note(run, r));
                        }
                    }
                    if warm {
                        // The conflicting step's firings belong to the log
                        // too: the next run replays them (filtered) as its
                        // own step at this position.
                        step_log.push_step(fired);
                        replayer = Some(Replayer::new(step_log));
                    }
                    stats.restarts += 1;
                    continue 'outer;
                }
            }
        };

        debug_assert!(final_interp.is_consistent());
        stats.blocked_instances = blocked.len() as u64;
        stats.elapsed = started.elapsed();
        let database = final_interp.incorp();
        if let Some(s) = sink.as_mut() {
            s.finish(&FinishEvent {
                program: &working,
                blocked: &blocked,
                stats: &stats,
                requested_threads,
                effective_threads,
                options: &self.options,
                policy: &policy_name,
                database: &database,
                storage: StorageCounters::now().delta_since(storage_at_start),
            });
        }
        Ok(ParkOutcome {
            database,
            interpretation: final_interp,
            blocked,
            program: working,
            stats,
            trace,
            program_marks,
        })
    }
}

/// Debug annotation describing what warm replay did for one run (goes to
/// the trace's note side channel, never the event stream).
fn replay_note(run: u64, r: &Replayer) -> String {
    match r.divergence_step() {
        Some(d) => format!(
            "run {run}: warm replay served {} steps, diverged at step {d}",
            r.served()
        ),
        None => format!("run {run}: warm replay served {} steps", r.served()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::Inertia;
    use park_syntax::parse_program;

    fn run(rules: &str, facts: &str) -> ParkOutcome {
        run_opts(rules, facts, EngineOptions::default())
    }

    fn run_opts(rules: &str, facts: &str, options: EngineOptions) -> ParkOutcome {
        let vocab = Vocabulary::new();
        let engine =
            Engine::with_options(Arc::clone(&vocab), &parse_program(rules).unwrap(), options)
                .unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        engine.park(&db, &mut Inertia).unwrap()
    }

    #[test]
    fn empty_program_returns_database() {
        let out = run("", "p(a). q(b).");
        assert_eq!(out.database.sorted_display(), vec!["p(a)", "q(b)"]);
        assert_eq!(out.stats.restarts, 0);
        assert_eq!(out.stats.gamma_steps, 1);
    }

    #[test]
    fn paper_p1_inertia() {
        // Section 4.1, P1 on D = {p}: conflict on `a`, inertia drops both
        // actions; result {p, q}.
        let out = run("p -> +q. p -> -a. q -> +a.", "p.");
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
        assert_eq!(out.stats.restarts, 1);
    }

    #[test]
    fn paper_p2_obsolete_consequences_discarded() {
        // Section 4.1, P2: s must NOT survive (its only reason, +a, was
        // invalidated), r must survive. Result {p, q, r}.
        let out = run("p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.", "p.");
        assert_eq!(out.database.sorted_display(), vec!["p", "q", "r"]);
    }

    #[test]
    fn paper_p3_false_conflict_avoided() {
        // Section 4.1, P3: the q-conflict is resolved first; a is then only
        // derivable by rule 5, so the result is {p, a}.
        let out = run("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p.");
        assert_eq!(out.database.sorted_display(), vec!["a", "p"]);
    }

    #[test]
    fn section5_inertia_example() {
        // Section 5: inertia blocks r2 then r5; final database {p, a, b}.
        let out = run(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
        );
        assert_eq!(out.database.sorted_display(), vec!["a", "b", "p"]);
        assert_eq!(out.stats.restarts, 2);
        let blocked = out.blocked_display();
        assert_eq!(blocked, vec!["(r2)", "(r5)"]);
    }

    #[test]
    fn section5_counterintuitive_inertia() {
        // Section 5 second example: result is {a} (not the "intuitive"
        // {a, d}).
        let out = run(
            "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
            "a.",
        );
        assert_eq!(out.database.sorted_display(), vec!["a"]);
        assert_eq!(out.blocked_display(), vec!["(r1)", "(r2)"]);
    }

    #[test]
    fn recursive_rules_terminate() {
        let out = run(
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).",
            "e(a, b). e(b, c). e(c, d).",
        );
        let mut expected = vec![
            "e(a, b)", "e(b, c)", "e(c, d)", "r(a, b)", "r(a, c)", "r(a, d)", "r(b, c)", "r(b, d)",
            "r(c, d)",
        ];
        expected.sort();
        assert_eq!(out.database.sorted_display(), expected);
    }

    #[test]
    fn eca_example_without_conflicts() {
        // Section 4.3, first example.
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program("r1: p(X) -> +q(X). r2: q(X) -> +r(X). r3: +r(X) -> -s(X).").unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), "p(a). s(a). s(b).").unwrap();
        let updates = UpdateSet::from_source(&vocab, "+q(b).").unwrap();
        let out = engine.run(&db, &updates, &mut Inertia).unwrap();
        assert_eq!(
            out.database.sorted_display(),
            vec!["p(a)", "q(a)", "q(b)", "r(a)", "r(b)"]
        );
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn eca_example_with_conflict() {
        // Section 4.3, second example. The paper's final fixpoint listing
        // contains q(a,a); the result below includes it (see EXPERIMENTS.md
        // on the paper's erratum) along with r(a,a), and p(a,a) survives by
        // inertia.
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(
                "r1: q(X, a) -> -p(X, a). r2: q(a, X) -> +r(a, X). r3: +r(X, Y) -> +p(X, Y).",
            )
            .unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), "p(a, a). p(a, b). p(a, c).").unwrap();
        let updates = UpdateSet::from_source(&vocab, "+q(a, a).").unwrap();
        let out = engine.run(&db, &updates, &mut Inertia).unwrap();
        assert_eq!(
            out.database.sorted_display(),
            vec!["p(a, a)", "p(a, b)", "p(a, c)", "q(a, a)", "r(a, a)"]
        );
        assert_eq!(out.stats.restarts, 1);
        // Inertia keeps p(a,a) (present in D): the deleting side r1 blocks.
        let blocked = out.blocked_display();
        assert_eq!(blocked.len(), 1);
        assert!(blocked[0].starts_with("(r1"), "{blocked:?}");
    }

    #[test]
    fn trace_records_paper_style_steps() {
        let out = run_opts(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
            EngineOptions::traced(),
        );
        let rendered = out.trace.render();
        assert!(rendered.contains("run 1"), "{rendered}");
        assert!(rendered.contains("run 3"), "{rendered}");
        assert!(rendered.contains("inconsistent: q"), "{rendered}");
        assert!(rendered.contains("inertia -> delete"), "{rendered}");
        assert!(rendered.contains("fixpoint"), "{rendered}");
    }

    #[test]
    fn one_at_a_time_scope_matches_all_scope_result_here() {
        let opts = EngineOptions::default().with_scope(ResolutionScope::One);
        let out = run_opts(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
            opts,
        );
        assert_eq!(out.database.sorted_display(), vec!["a", "b", "p"]);
    }

    #[test]
    fn step_limit_is_enforced() {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &parse_program("p -> +q. q -> +r.").unwrap(),
            EngineOptions {
                max_steps: 1,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let db = FactStore::from_source(vocab, "p.").unwrap();
        let err = engine.park(&db, &mut Inertia).unwrap_err();
        assert_eq!(err, EngineError::StepLimit { limit: 1 });
    }

    #[test]
    fn restart_limit_is_enforced() {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &parse_program("p -> +q. p -> -q.").unwrap(),
            EngineOptions {
                max_restarts: 0,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let db = FactStore::from_source(vocab, "p.").unwrap();
        let err = engine.park(&db, &mut Inertia).unwrap_err();
        assert_eq!(err, EngineError::RestartLimit { limit: 0 });
    }

    #[test]
    fn resolver_failure_is_surfaced() {
        struct Failing;
        impl ConflictResolver for Failing {
            fn name(&self) -> &str {
                "failing"
            }
            fn select(
                &mut self,
                _: &SelectContext<'_>,
                _: &crate::conflict::Conflict,
            ) -> Result<crate::conflict::Resolution, String> {
                Err("no answer".into())
            }
        }
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program("p -> +q. p -> -q.").unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, "p.").unwrap();
        let err = engine.park(&db, &mut Failing).unwrap_err();
        assert!(matches!(err, EngineError::Resolver { .. }));
    }

    #[test]
    fn historical_one_sided_conflict_terminates() {
        // The DESIGN.md §3 degenerate case: +a is derived via ¬q while ¬q
        // holds, then +q arrives and invalidates the deriving body, then -a
        // becomes derivable. The strict paper definition would find no
        // two-sided conflict; provenance supplies the historical +a side.
        let out = run("r1: !q -> +a. r2: p -> +q. r3: q -> -a.", "p.");
        // Inertia: a ∉ D ⇒ delete wins; r1's grounding is blocked; result
        // stabilizes without a.
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
    }

    #[test]
    fn stats_are_populated() {
        let out = run("p -> +q. p -> -a. q -> +a.", "p.");
        assert!(out.stats.gamma_steps >= 2);
        assert_eq!(out.stats.restarts, 1);
        assert_eq!(out.stats.conflicts_resolved, 1);
        assert!(out.stats.groundings_fired > 0);
        assert_eq!(out.stats.blocked_instances, 1);
        assert!(out.stats.peak_marked_atoms >= 2);
    }

    #[test]
    fn seminaive_mode_reproduces_every_inline_scenario() {
        // Every (rules, facts, expected) triple from this module's tests,
        // re-run under semi-naive evaluation: results, restarts, steps and
        // blocked sets must be identical to naive evaluation.
        let scenarios = [
            ("p -> +q. p -> -a. q -> +a.", "p."),
            ("p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.", "p."),
            ("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p."),
            (
                "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
                "p.",
            ),
            (
                "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
                "a.",
            ),
            (
                "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).",
                "e(a, b). e(b, c). e(c, d).",
            ),
            ("r1: !q -> +a. r2: p -> +q. r3: q -> -a.", "p."),
            (
                "r1: p(X), p(Y) -> +q(X, Y). r2: q(X, X) -> -q(X, X).
                 r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
                "p(a). p(b). p(c).",
            ),
        ];
        for (rules, facts) in scenarios {
            let naive = run_opts(rules, facts, EngineOptions::default());
            let semi = run_opts(
                rules,
                facts,
                EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
            );
            assert!(
                naive.database.same_facts(&semi.database),
                "database mismatch for {rules}: {:?} vs {:?}",
                naive.database.sorted_display(),
                semi.database.sorted_display()
            );
            assert_eq!(naive.stats.restarts, semi.stats.restarts, "{rules}");
            assert_eq!(naive.stats.gamma_steps, semi.stats.gamma_steps, "{rules}");
            assert_eq!(naive.blocked_display(), semi.blocked_display(), "{rules}");
            assert!(
                semi.stats.groundings_fired <= naive.stats.groundings_fired,
                "semi-naive must not enumerate more: {rules}"
            );
        }
    }

    #[test]
    fn seminaive_eca_examples_agree() {
        let vocab = Vocabulary::new();
        let program = park_syntax::parse_program(
            "r1: q(X, a) -> -p(X, a). r2: q(a, X) -> +r(a, X). r3: +r(X, Y) -> +p(X, Y).",
        )
        .unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), "p(a, a). p(a, b). p(a, c).").unwrap();
        let updates = UpdateSet::from_source(&vocab, "+q(a, a).").unwrap();
        let naive = Engine::new(Arc::clone(&vocab), &program)
            .unwrap()
            .run(&db, &updates, &mut Inertia)
            .unwrap();
        let semi = Engine::with_options(
            Arc::clone(&vocab),
            &program,
            EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
        )
        .unwrap()
        .run(&db, &updates, &mut Inertia)
        .unwrap();
        assert!(naive.database.same_facts(&semi.database));
        assert_eq!(naive.blocked_display(), semi.blocked_display());
    }

    // The cross-mode identity suites (parallel vs sequential, warm vs
    // cold) live in `park-testkit`'s `tests/identity.rs`, on top of the
    // shared fingerprint/transcript comparison helpers; the differential
    // harness there extends them to generated programs.

    #[test]
    fn warm_replay_skips_reevaluation_of_the_stable_prefix() {
        // Section 5 example, warm: run 2 diverges at step 1 (blocked r2 is
        // in the first logged step), run 3 replays all three of run 2's
        // steps — diverging only at step 3, where filtering out r5 turns
        // the logged conflict step into the fixpoint. 1 + 3 replayed steps
        // total; the last divergence was at step 3.
        let out = run_opts(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
            EngineOptions::traced(),
        );
        assert_eq!(out.database.sorted_display(), vec!["a", "b", "p"]);
        assert_eq!(out.stats.restarts, 2);
        assert_eq!(out.stats.replayed_steps, 4);
        assert_eq!(out.stats.replay_divergence_step, Some(3));
        let notes = out.trace.notes();
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("run 2"), "{notes:?}");
        assert!(notes[1].contains("run 3"), "{notes:?}");
    }

    #[test]
    fn cold_restarts_record_no_replay() {
        let out = run_opts(
            "p -> +q. p -> -a. q -> +a.",
            "p.",
            EngineOptions::default().with_warm_restarts(false),
        );
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
        assert_eq!(out.stats.replayed_steps, 0);
        assert_eq!(out.stats.replay_divergence_step, None);
    }

    #[test]
    fn scope_one_trace_lists_only_the_resolved_conflict() {
        // Two simultaneous conflicts (q and a); under One-scope only the
        // first is handed to SELECT per restart, and the Inconsistent event
        // must say so, listing the other as deferred.
        let out = run_opts(
            "p -> +q. p -> -q. p -> +a. p -> -a.",
            "p.",
            EngineOptions::traced().with_scope(ResolutionScope::One),
        );
        let first_inconsistent = out
            .trace
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::Inconsistent {
                    atoms, deferred, ..
                } => Some((atoms.clone(), deferred.clone())),
                _ => None,
            })
            .expect("an inconsistency is traced");
        assert_eq!(first_inconsistent.0, vec!["q".to_string()]);
        assert_eq!(first_inconsistent.1, vec!["a".to_string()]);
        // All-scope: everything is resolved, nothing deferred.
        let out = run_opts(
            "p -> +q. p -> -q. p -> +a. p -> -a.",
            "p.",
            EngineOptions::traced(),
        );
        for e in out.trace.events() {
            if let TraceEvent::Inconsistent { deferred, .. } = e {
                assert!(deferred.is_empty(), "{deferred:?}");
            }
        }
    }

    #[test]
    fn outcome_exposes_final_bistructure_parts() {
        let out = run("p -> +q. p -> -q.", "p.");
        assert!(out.interpretation.is_consistent());
        assert_eq!(out.blocked.len(), 1);
        assert_eq!(out.database.sorted_display(), vec!["p"]);
    }
}
