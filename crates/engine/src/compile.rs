//! Rule compilation: from AST rules to executable match plans.
//!
//! Compilation (a) checks the paper's safety conditions, (b) interns all
//! predicates and constants against the shared vocabulary, (c) numbers each
//! rule's variables into dense slots, and (d) runs a greedy join planner
//! that orders body literals by boundness so that evaluation can drive
//! indexed lookups. The planner also records which `(predicate, column
//! mask, zone)` indexes evaluation will want, so the engine can build them
//! up front.

use crate::error::{EngineError, EngineResult};
use crate::validity::MarkZone;
use park_storage::{Code, ColumnMask, PredId, UpdateSet, Value, Vocabulary};
use park_syntax::{check_rule, Atom, BodyLiteral, CompOp, Head, Program, Rule, Sign, Term};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a rule within a [`CompiledProgram`] (index into its rule
/// vector). Transaction-update rules of `P_U` get ids after the program's
/// own rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

/// A term position in a compiled atom: a constant or a variable slot.
///
/// Constants are interned at compile time, so matching and instantiation
/// work entirely in encoded [`Code`] space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermSlot {
    /// A constant, pre-encoded against the program's vocabulary.
    Const(Code),
    /// The rule variable with this slot number.
    Var(u16),
}

/// An atom with interned predicate and slotted terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledAtom {
    /// The predicate.
    pub pred: PredId,
    /// The argument pattern.
    pub terms: Box<[TermSlot]>,
}

impl CompiledAtom {
    /// Instantiate under a total substitution of encoded values.
    pub fn instantiate(&self, subst: &[Code]) -> Box<[Code]> {
        self.terms
            .iter()
            .map(|t| match *t {
                TermSlot::Const(c) => c,
                TermSlot::Var(i) => subst[i as usize],
            })
            .collect()
    }

    /// Variable slots occurring in this atom (with duplicates).
    pub fn var_slots(&self) -> impl Iterator<Item = u16> + '_ {
        self.terms.iter().filter_map(|t| match *t {
            TermSlot::Var(i) => Some(i),
            TermSlot::Const(_) => None,
        })
    }
}

/// The kind of a compiled body literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// Positive condition (matched against `I° ∪ I⁺`).
    Pos,
    /// Negated condition (validity test).
    Neg,
    /// Event literal (matched against `I⁺` for `+`, `I⁻` for `-`).
    Event(Sign),
}

/// A compiled body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledLiteral {
    /// An atom-shaped literal: positive, negated, or event.
    Atom {
        /// Positive, negated, or event.
        kind: LitKind,
        /// The pattern.
        atom: CompiledAtom,
    },
    /// A comparison guard (language extension): a pure filter over bound
    /// values.
    Guard {
        /// The operator.
        op: CompOp,
        /// Left operand.
        lhs: TermSlot,
        /// Right operand.
        rhs: TermSlot,
    },
}

impl CompiledLiteral {
    /// True for literals that bind variables by extensional matching.
    pub fn is_binding(&self) -> bool {
        matches!(self, CompiledLiteral::Atom { kind, .. } if *kind != LitKind::Neg)
    }

    /// The variable slots occurring in the literal.
    pub fn var_slots(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            CompiledLiteral::Atom { atom, .. } => Box::new(atom.var_slots()),
            CompiledLiteral::Guard { lhs, rhs, .. } => {
                let v = |t: &TermSlot| match *t {
                    TermSlot::Var(s) => Some(s),
                    TermSlot::Const(_) => None,
                };
                Box::new(v(lhs).into_iter().chain(v(rhs)))
            }
        }
    }

    /// Evaluate a guard under total encoded bindings. Equality compares
    /// codes directly (interning is injective); ordered comparisons decode
    /// through the vocabulary. Panics on non-guard literals.
    pub fn eval_guard(&self, vocab: &Vocabulary, bindings: &[Option<Code>]) -> bool {
        let CompiledLiteral::Guard { op, lhs, rhs } = self else {
            panic!("eval_guard on a non-guard literal");
        };
        let code = |t: &TermSlot| match *t {
            TermSlot::Const(c) => c,
            TermSlot::Var(s) => bindings[s as usize].expect("guards scheduled after binding"),
        };
        let (l, r) = (code(lhs), code(rhs));
        match op {
            CompOp::Eq => l == r,
            CompOp::Ne => l != r,
            // Ordered comparisons are integer-only; symbols compare false.
            _ => match (vocab.decode(l), vocab.decode(r)) {
                (Value::Int(a), Value::Int(b)) => op.eval_ordering(a.cmp(&b)),
                _ => false,
            },
        }
    }
}

/// One step of a rule's evaluation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedStep {
    /// Index into the rule's `body`.
    pub lit: usize,
    /// Columns bound (constant or already-bound variable) when this step
    /// runs — the probe mask for binding literals.
    pub mask: ColumnMask,
}

/// An index the evaluator will probe: build it before evaluating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexRequest {
    /// The predicate.
    pub pred: PredId,
    /// The bound-column mask.
    pub mask: ColumnMask,
    /// Which interpretation zone.
    pub zone: MarkZone,
}

/// A compiled rule.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The rule's id in its program.
    pub id: RuleId,
    /// The original AST (kept for display and provenance).
    pub source: Rule,
    /// Head polarity.
    pub head_sign: Sign,
    /// Head pattern.
    pub head: CompiledAtom,
    /// Body literals in source order.
    pub body: Box<[CompiledLiteral]>,
    /// Evaluation order with probe masks.
    pub plan: Box<[PlannedStep]>,
    /// Number of variable slots.
    pub num_vars: u16,
    /// Rule priority (for priority-based policies).
    pub priority: i32,
    /// True for the synthetic `-> ±a.` rules modelling transaction updates.
    pub is_update: bool,
    var_names: Box<[String]>,
}

impl CompiledRule {
    /// Name for traces: the source label, or `r<index+1>` if unnamed.
    pub fn display_name(&self) -> String {
        match &self.source.name {
            Some(n) => n.clone(),
            None => format!("r{}", self.id.0 + 1),
        }
    }

    /// Name of variable slot `i`.
    pub fn var_name(&self, i: usize) -> String {
        self.var_names[i].clone()
    }
}

/// A compiled program: the executable form of the paper's `P` (or `P_U`).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    vocab: Arc<Vocabulary>,
    rules: Vec<CompiledRule>,
    index_requests: Vec<IndexRequest>,
}

impl CompiledProgram {
    /// Compile a program, checking safety and registering predicates.
    pub fn compile(vocab: Arc<Vocabulary>, program: &Program) -> EngineResult<Self> {
        let mut rules = Vec::with_capacity(program.rules.len());
        let mut requests: HashMap<IndexRequest, ()> = HashMap::new();
        for (i, rule) in program.rules.iter().enumerate() {
            let compiled = compile_rule(&vocab, rule, RuleId(i as u32), false, &mut requests)?;
            rules.push(compiled);
        }
        Ok(CompiledProgram {
            vocab,
            rules,
            index_requests: requests.into_keys().collect(),
        })
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The rules.
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Look up a rule.
    pub fn rule(&self, id: RuleId) -> &CompiledRule {
        &self.rules[id.0 as usize]
    }

    /// Find a rule id by source name.
    pub fn rule_by_name(&self, name: &str) -> Option<RuleId> {
        self.rules
            .iter()
            .find(|r| r.source.name.as_deref() == Some(name))
            .map(|r| r.id)
    }

    /// The indexes evaluation will probe.
    pub fn index_requests(&self) -> &[IndexRequest] {
        &self.index_requests
    }

    /// Static conflict analysis: `false` iff no predicate has both an
    /// inserting and a deleting rule head, in which case no run of this
    /// program can ever produce a conflict and the engine skips provenance
    /// tracking and conflict collection altogether. (The paper, Section 1:
    /// "if no two conflicting rules are ever firable, some fixpoint
    /// semantics may be appropriate.")
    pub fn possibly_conflicting(&self) -> bool {
        let mut inserted = std::collections::HashSet::new();
        let mut deleted = std::collections::HashSet::new();
        for r in &self.rules {
            match r.head_sign {
                Sign::Insert => inserted.insert(r.head.pred),
                Sign::Delete => deleted.insert(r.head.pred),
            };
        }
        inserted.intersection(&deleted).next().is_some()
    }

    /// The Section 4.3 construction `P_U`: this program extended with one
    /// body-less rule `-> ±a.` per transaction update, in order. The new
    /// rules are named `tx1`, `tx2`, ....
    pub fn with_updates(&self, updates: &UpdateSet) -> Self {
        if updates.is_empty() {
            return self.clone();
        }
        let mut extended = self.clone();
        for (i, u) in updates.iter().enumerate() {
            let id = RuleId(extended.rules.len() as u32);
            let atom_ast = self.vocab.atom(u.pred, &u.tuple);
            let source = Rule {
                name: Some(format!("tx{}", i + 1)),
                priority: 0,
                body: Vec::new(),
                head: Head {
                    sign: u.sign,
                    atom: atom_ast.clone(),
                },
                span: park_syntax::Span::synthetic(),
            };
            let terms: Box<[TermSlot]> = u
                .tuple
                .values()
                .iter()
                .map(|&v| TermSlot::Const(self.vocab.encode(v)))
                .collect();
            extended.rules.push(CompiledRule {
                id,
                source,
                head_sign: u.sign,
                head: CompiledAtom {
                    pred: u.pred,
                    terms,
                },
                body: Box::from([]),
                plan: Box::from([]),
                num_vars: 0,
                priority: 0,
                is_update: true,
                var_names: Box::from([]),
            });
        }
        extended
    }
}

fn compile_atom(
    vocab: &Vocabulary,
    atom: &Atom,
    vars: &mut Vec<String>,
    var_slots: &mut HashMap<String, u16>,
) -> EngineResult<CompiledAtom> {
    let pred = vocab.pred(&atom.pred, atom.arity())?;
    let terms = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => TermSlot::Const(vocab.encode(vocab.value(c))),
            Term::Var(v) => {
                let slot = *var_slots.entry(v.clone()).or_insert_with(|| {
                    let s = u16::try_from(vars.len()).expect("too many variables in rule");
                    vars.push(v.clone());
                    s
                });
                TermSlot::Var(slot)
            }
        })
        .collect();
    Ok(CompiledAtom { pred, terms })
}

fn compile_rule(
    vocab: &Arc<Vocabulary>,
    rule: &Rule,
    id: RuleId,
    is_update: bool,
    requests: &mut HashMap<IndexRequest, ()>,
) -> EngineResult<CompiledRule> {
    check_rule(rule).map_err(EngineError::Safety)?;
    let mut vars: Vec<String> = Vec::new();
    let mut var_slots: HashMap<String, u16> = HashMap::new();
    // Two passes: atom-shaped literals first (they assign variable slots),
    // guards second (safety guarantees their variables occur in some
    // binding literal, which may appear later in source order).
    let mut body: Vec<Option<CompiledLiteral>> = vec![None; rule.body.len()];
    for (i, lit) in rule.body.iter().enumerate() {
        let (kind, atom) = match lit {
            BodyLiteral::Pos(a) => (LitKind::Pos, a),
            BodyLiteral::Neg(a) => (LitKind::Neg, a),
            BodyLiteral::Event(s, a) => (LitKind::Event(*s), a),
            BodyLiteral::Compare(..) => continue,
        };
        body[i] = Some(CompiledLiteral::Atom {
            kind,
            atom: compile_atom(vocab, atom, &mut vars, &mut var_slots)?,
        });
    }
    for (i, lit) in rule.body.iter().enumerate() {
        if let BodyLiteral::Compare(op, l, r) = lit {
            let slot = |t: &Term| match t {
                Term::Const(c) => TermSlot::Const(vocab.encode(vocab.value(c))),
                Term::Var(v) => {
                    TermSlot::Var(*var_slots.get(v).expect("safety binds guard variables"))
                }
            };
            body[i] = Some(CompiledLiteral::Guard {
                op: *op,
                lhs: slot(l),
                rhs: slot(r),
            });
        }
    }
    let body: Vec<CompiledLiteral> = body
        .into_iter()
        .map(|l| l.expect("every literal compiled"))
        .collect();
    let head = compile_atom(vocab, &rule.head.atom, &mut vars, &mut var_slots)?;
    let plan = plan_body(&body);

    // Record the indexes the plan will probe.
    for step in &plan {
        let CompiledLiteral::Atom { kind, atom } = &body[step.lit] else {
            continue;
        };
        if step.mask.is_empty() {
            continue;
        }
        match kind {
            LitKind::Pos => {
                requests.insert(
                    IndexRequest {
                        pred: atom.pred,
                        mask: step.mask,
                        zone: MarkZone::Base,
                    },
                    (),
                );
                requests.insert(
                    IndexRequest {
                        pred: atom.pred,
                        mask: step.mask,
                        zone: MarkZone::Plus,
                    },
                    (),
                );
            }
            LitKind::Event(Sign::Insert) => {
                requests.insert(
                    IndexRequest {
                        pred: atom.pred,
                        mask: step.mask,
                        zone: MarkZone::Plus,
                    },
                    (),
                );
            }
            LitKind::Event(Sign::Delete) => {
                requests.insert(
                    IndexRequest {
                        pred: atom.pred,
                        mask: step.mask,
                        zone: MarkZone::Minus,
                    },
                    (),
                );
            }
            LitKind::Neg => {}
        }
    }

    Ok(CompiledRule {
        id,
        source: rule.clone(),
        head_sign: rule.head.sign,
        head,
        body: body.into(),
        plan: plan.into(),
        num_vars: u16::try_from(vars.len()).expect("too many variables in rule"),
        priority: rule.priority,
        is_update,
        var_names: vars.into(),
    })
}

/// Greedy join ordering.
///
/// Negated literals are filters: they run as soon as all their variables are
/// bound. Among binding literals (positive and event), the planner picks the
/// one with the most bound positions, breaking ties toward fewer unbound
/// variables and then source order. The probe mask of each binding step is
/// the set of positions holding constants or already-bound variables.
fn plan_body(body: &[CompiledLiteral]) -> Vec<PlannedStep> {
    let mut plan = Vec::with_capacity(body.len());
    let mut scheduled = vec![false; body.len()];
    let mut bound: Vec<bool> = Vec::new(); // by var slot
    let is_bound = |bound: &[bool], slot: u16| bound.get(slot as usize).copied().unwrap_or(false);
    let bind = |bound: &mut Vec<bool>, slot: u16| {
        if bound.len() <= slot as usize {
            bound.resize(slot as usize + 1, false);
        }
        bound[slot as usize] = true;
    };

    let mask_of = |atom: &CompiledAtom, bound: &[bool]| {
        ColumnMask::from_cols((0..atom.terms.len()).filter(|&c| match atom.terms[c] {
            TermSlot::Const(_) => true,
            TermSlot::Var(s) => is_bound(bound, s),
        }))
    };

    loop {
        // Schedule every filter literal (negation, guard) whose variables
        // are all bound.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (i, lit) in body.iter().enumerate() {
                if scheduled[i] || lit.is_binding() {
                    continue;
                }
                if lit.var_slots().all(|s| is_bound(&bound, s)) {
                    let mask = match lit {
                        CompiledLiteral::Atom { atom, .. } => mask_of(atom, &bound),
                        CompiledLiteral::Guard { .. } => ColumnMask::EMPTY,
                    };
                    plan.push(PlannedStep { lit: i, mask });
                    scheduled[i] = true;
                    progressed = true;
                }
            }
        }

        // Pick the best unscheduled binding literal: most bound positions,
        // then fewest unbound variables, then source order.
        let mut best: Option<(usize, usize, usize)> = None; // (idx, bound_cnt, unbound_vars)
        for (i, lit) in body.iter().enumerate() {
            if scheduled[i] || !lit.is_binding() {
                continue;
            }
            let CompiledLiteral::Atom { atom, .. } = lit else {
                unreachable!()
            };
            let bound_cnt = (0..atom.terms.len())
                .filter(|&c| match atom.terms[c] {
                    TermSlot::Const(_) => true,
                    TermSlot::Var(s) => is_bound(&bound, s),
                })
                .count();
            let unbound_vars = atom
                .var_slots()
                .filter(|&s| !is_bound(&bound, s))
                .collect::<std::collections::HashSet<_>>()
                .len();
            let better = match best {
                None => true,
                Some((_, bc, uv)) => bound_cnt > bc || (bound_cnt == bc && unbound_vars < uv),
            };
            if better {
                best = Some((i, bound_cnt, unbound_vars));
            }
        }
        let Some((i, _, _)) = best else { break };
        let CompiledLiteral::Atom { atom, .. } = &body[i] else {
            unreachable!()
        };
        let mask = mask_of(atom, &bound);
        plan.push(PlannedStep { lit: i, mask });
        scheduled[i] = true;
        for s in atom.var_slots() {
            bind(&mut bound, s);
        }
    }
    debug_assert!(
        scheduled.iter().all(|&s| s),
        "safety guarantees a total plan"
    );
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_syntax::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        CompiledProgram::compile(Vocabulary::new(), &parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_simple_program() {
        let p = compile("r1: p(X) -> +q(X). r2: q(X) -> -p(X).");
        assert_eq!(p.len(), 2);
        assert_eq!(p.rule(RuleId(0)).display_name(), "r1");
        assert_eq!(p.rule_by_name("r2"), Some(RuleId(1)));
        assert_eq!(p.rule(RuleId(0)).num_vars, 1);
        assert_eq!(p.rule(RuleId(0)).head_sign, Sign::Insert);
    }

    #[test]
    fn unnamed_rules_get_positional_names() {
        let p = compile("p -> +q. q -> +r.");
        assert_eq!(p.rule(RuleId(0)).display_name(), "r1");
        assert_eq!(p.rule(RuleId(1)).display_name(), "r2");
    }

    #[test]
    fn unsafe_rule_rejected() {
        let err = CompiledProgram::compile(
            Vocabulary::new(),
            &parse_program("p(X) -> +q(X, Y).").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Safety(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = CompiledProgram::compile(
            Vocabulary::new(),
            &parse_program("p(X) -> +q(X). q(X, X) -> +p(X).").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)));
    }

    #[test]
    fn variables_are_slotted_in_first_occurrence_order() {
        let p = compile("p(X, Y), q(Y, Z) -> +r(Z, X).");
        let r = p.rule(RuleId(0));
        assert_eq!(r.num_vars, 3);
        assert_eq!(r.var_name(0), "X");
        assert_eq!(r.var_name(1), "Y");
        assert_eq!(r.var_name(2), "Z");
        assert_eq!(r.head.terms.as_ref(), &[TermSlot::Var(2), TermSlot::Var(0)]);
    }

    #[test]
    fn instantiate_head() {
        let p = compile("p(X, Y) -> +q(Y, X).");
        let v = p.vocab();
        let a = v.encode(Value::Sym(v.sym("a")));
        let b = v.encode(Value::Sym(v.sym("b")));
        let row = p.rule(RuleId(0)).head.instantiate(&[a, b]);
        assert_eq!(row.as_ref(), &[b, a]);
    }

    #[test]
    fn plan_defers_negation_until_bound() {
        // !q(Y) cannot run until q... until Y is bound by p(X, Y).
        let p = compile("!q(Y), p(X, Y) -> +r(X).");
        let r = p.rule(RuleId(0));
        assert_eq!(r.plan.len(), 2);
        assert_eq!(r.plan[0].lit, 1, "binding literal must run first");
        assert_eq!(r.plan[1].lit, 0);
        // When the negation runs, all its columns are bound.
        assert_eq!(r.plan[1].mask.count(), 1);
    }

    #[test]
    fn plan_prefers_more_bound_literals() {
        // After p(X) binds X, the literal q(X, Y) has one bound column while
        // s(Z, W) has none; q must be scheduled before s.
        let p = compile("p(X), s(Z, W), q(X, Y) -> +t(X, Y, Z, W).");
        let r = p.rule(RuleId(0));
        let order: Vec<usize> = r.plan.iter().map(|s| s.lit).collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn constants_count_as_bound_for_planning() {
        let p = compile("p(X), q(a, Y) -> +r(X, Y).");
        let r = p.rule(RuleId(0));
        // q(a, Y) has a constant column; it is picked first (1 bound vs 0).
        assert_eq!(r.plan[0].lit, 1);
        assert!(r.plan[0].mask.contains(0));
    }

    #[test]
    fn index_requests_cover_pos_zones() {
        let p = compile("p(X), q(X, Y) -> +r(X, Y).");
        let reqs = p.index_requests();
        // q probed with column 0 bound, against Base and Plus.
        let q = p.vocab().lookup_pred("q").unwrap();
        let mask = ColumnMask::from_cols([0]);
        assert!(reqs
            .iter()
            .any(|r| r.pred == q && r.mask == mask && r.zone == MarkZone::Base));
        assert!(reqs
            .iter()
            .any(|r| r.pred == q && r.mask == mask && r.zone == MarkZone::Plus));
    }

    #[test]
    fn event_literal_requests_only_its_zone() {
        let p = compile("s(X), +r(X) -> -s(X).");
        let r = p.vocab().lookup_pred("r").unwrap();
        let mask = ColumnMask::from_cols([0]);
        let zones: Vec<MarkZone> = p
            .index_requests()
            .iter()
            .filter(|req| req.pred == r && req.mask == mask)
            .map(|req| req.zone)
            .collect();
        assert_eq!(zones, vec![MarkZone::Plus]);
    }

    #[test]
    fn with_updates_appends_tx_rules() {
        let p = compile("p(X) -> +q(X).");
        let v = Arc::clone(p.vocab());
        let mut u = UpdateSet::empty();
        let q = v.pred("q", 1).unwrap();
        u.insert(q, park_storage::Tuple::new(vec![Value::Sym(v.sym("b"))]));
        u.delete(q, park_storage::Tuple::new(vec![Value::Sym(v.sym("c"))]));
        let pu = p.with_updates(&u);
        assert_eq!(pu.len(), 3);
        let tx1 = pu.rule(RuleId(1));
        assert!(tx1.is_update);
        assert!(tx1.body.is_empty());
        assert_eq!(tx1.display_name(), "tx1");
        assert_eq!(tx1.head_sign, Sign::Insert);
        assert_eq!(pu.rule(RuleId(2)).head_sign, Sign::Delete);
        assert_eq!(tx1.source.to_string(), "tx1: -> +q(b).");
    }

    #[test]
    fn with_empty_updates_is_identity() {
        let p = compile("p(X) -> +q(X).");
        assert_eq!(p.with_updates(&UpdateSet::empty()).len(), 1);
    }

    #[test]
    fn guards_compile_and_schedule_after_binding() {
        let p = compile("Q < 10, stock(I, Q) -> +low(I).");
        let r = p.rule(RuleId(0));
        assert_eq!(r.plan.len(), 2);
        // The stock literal must run first even though the guard is
        // written first.
        assert!(matches!(
            &r.body[r.plan[0].lit],
            CompiledLiteral::Atom { .. }
        ));
        assert!(matches!(
            &r.body[r.plan[1].lit],
            CompiledLiteral::Guard { .. }
        ));
        // Guards request no indexes.
        assert!(p.index_requests().iter().all(|req| {
            let stock = p.vocab().lookup_pred("stock").unwrap();
            req.pred == stock
        }));
    }

    #[test]
    fn guard_evaluation_semantics() {
        let p = compile("p(X, Y), X < Y -> +q(X).");
        let r = p.rule(RuleId(0));
        let guard = r
            .body
            .iter()
            .find(|l| matches!(l, CompiledLiteral::Guard { .. }))
            .unwrap();
        let v = p.vocab();
        let b = |x: i64, y: i64| vec![Some(v.encode(Value::Int(x))), Some(v.encode(Value::Int(y)))];
        assert!(guard.eval_guard(v, &b(1, 2)));
        assert!(!guard.eval_guard(v, &b(2, 2)));
        assert!(!guard.eval_guard(v, &b(3, 2)));
        // Symbols under an ordered comparison: false.
        let sym = Some(v.encode(Value::Sym(v.sym("a"))));
        assert!(!guard.eval_guard(v, &[sym, Some(v.encode(Value::Int(5)))]));
    }

    #[test]
    fn guard_ordered_comparison_handles_spilled_ints() {
        // Integers beyond the 30-bit inline range spill into the
        // vocabulary; ordered guards must still compare their true values,
        // not their (allocation-ordered) spill codes.
        let p = compile("p(X, Y), X < Y -> +q(X).");
        let r = p.rule(RuleId(0));
        let guard = r
            .body
            .iter()
            .find(|l| matches!(l, CompiledLiteral::Guard { .. }))
            .unwrap();
        let v = p.vocab();
        let big = 1i64 << 40;
        // Encode the larger value first so spill order inverts value order.
        let hi = Some(v.encode(Value::Int(big + 1)));
        let lo = Some(v.encode(Value::Int(big)));
        assert!(guard.eval_guard(v, &[lo, hi]));
        assert!(!guard.eval_guard(v, &[hi, lo]));
    }

    #[test]
    fn repeated_variable_in_literal_compiles() {
        let p = compile("q(X, X) -> -q(X, X).");
        let r = p.rule(RuleId(0));
        assert_eq!(r.num_vars, 1);
        let CompiledLiteral::Atom { atom, .. } = &r.body[0] else {
            panic!("expected an atom literal");
        };
        assert_eq!(atom.terms.as_ref(), &[TermSlot::Var(0), TermSlot::Var(0)]);
    }
}
