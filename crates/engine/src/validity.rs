//! Literal validity in an i-interpretation (Sections 4.2 and 4.3).
//!
//! For a ground positive literal `a` and i-interpretation `I`:
//!
//! * `a` is valid iff `a ∈ I°` or `+a ∈ I⁺`;
//! * `¬a` is valid iff `-a ∈ I⁻`, or neither `a ∈ I°` nor `+a ∈ I⁺`
//!   (negation as failure / closed world);
//! * the event literal `+a` is valid iff `+a ∈ I⁺`;
//! * the event literal `-a` is valid iff `-a ∈ I⁻`.
//!
//! Note the asymmetry the paper builds in deliberately: a *pending deletion*
//! `-a` makes `¬a` valid even while `a` is still physically present — and if
//! `a ∈ I°` as well, both `a` and `¬a` are valid at once. Validity is about
//! the state the computation is moving toward, not only the current
//! database.

use crate::interp::IInterpretation;
use park_storage::{Code, PredId};
use park_syntax::Sign;

/// Which zone of an i-interpretation a lookup touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkZone {
    /// The unmarked atoms `I°`.
    Base,
    /// The insertion-marked atoms `I⁺`.
    Plus,
    /// The deletion-marked atoms `I⁻`.
    Minus,
}

/// Validity of a positive condition literal.
pub fn valid_pos(i: &IInterpretation, pred: PredId, row: &[Code]) -> bool {
    i.base().contains_row(pred, row) || i.plus().contains_row(pred, row)
}

/// Validity of a negated condition literal `¬a`.
pub fn valid_neg(i: &IInterpretation, pred: PredId, row: &[Code]) -> bool {
    i.minus().contains_row(pred, row)
        || !(i.base().contains_row(pred, row) || i.plus().contains_row(pred, row))
}

/// Validity of an event literal `+a` / `-a` (Section 4.3).
pub fn valid_event(i: &IInterpretation, sign: Sign, pred: PredId, row: &[Code]) -> bool {
    match sign {
        Sign::Insert => i.plus().contains_row(pred, row),
        Sign::Delete => i.minus().contains_row(pred, row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::{FactStore, Value, Vocabulary};
    use std::sync::Arc;

    fn setup() -> (IInterpretation, PredId, [Code; 1], [Code; 1]) {
        let v = Vocabulary::new();
        let db = FactStore::from_source(Arc::clone(&v), "q(a).").unwrap();
        let q = v.lookup_pred("q").unwrap();
        let a = [v.encode(Value::Sym(v.sym("a")))];
        let b = [v.encode(Value::Sym(v.sym("b")))];
        (IInterpretation::from_database(db), q, a, b)
    }

    #[test]
    fn positive_literal_valid_via_base_or_plus() {
        let (mut i, q, a, b) = setup();
        assert!(valid_pos(&i, q, &a)); // a ∈ I°
        assert!(!valid_pos(&i, q, &b));
        i.insert_marked(Sign::Insert, q, &b);
        assert!(valid_pos(&i, q, &b)); // +b ∈ I⁺
    }

    #[test]
    fn negated_literal_closed_world() {
        let (i, q, a, b) = setup();
        assert!(!valid_neg(&i, q, &a)); // a present, no -a
        assert!(valid_neg(&i, q, &b)); // b absent entirely
    }

    #[test]
    fn negated_literal_valid_via_pending_delete() {
        let (mut i, q, a, _) = setup();
        i.insert_marked(Sign::Delete, q, &a);
        // -a ∈ I⁻ makes ¬a valid even though a ∈ I°; both polarities are
        // valid simultaneously — exactly the paper's definition.
        assert!(valid_neg(&i, q, &a));
        assert!(valid_pos(&i, q, &a));
    }

    #[test]
    fn plus_mark_invalidates_negation() {
        let (mut i, q, _, b) = setup();
        assert!(valid_neg(&i, q, &b));
        i.insert_marked(Sign::Insert, q, &b);
        assert!(!valid_neg(&i, q, &b));
    }

    #[test]
    fn event_literals_require_the_mark() {
        let (mut i, q, a, b) = setup();
        // a ∈ I° is NOT the event +a.
        assert!(!valid_event(&i, Sign::Insert, q, &a));
        i.insert_marked(Sign::Insert, q, &b);
        i.insert_marked(Sign::Delete, q, &a);
        assert!(valid_event(&i, Sign::Insert, q, &b));
        assert!(!valid_event(&i, Sign::Delete, q, &b));
        assert!(valid_event(&i, Sign::Delete, q, &a));
    }
}
