//! Bi-structures and their ordering (Section 4.2).
//!
//! A *bi-structure* `⟨B, I⟩` pairs a blocked set with an i-interpretation.
//! The paper orders them by
//!
//! ```text
//! ⟨B, I⟩ < ⟨B', I'⟩  iff  B ⊂ B'  or  (B = B' and I ⊂ I')
//! ```
//!
//! and proves (Theorem 4.1) that the transition operator Δ grows along this
//! order, which gives termination. The engine iterates Δ without
//! materializing bi-structures on its hot path; this module provides them as
//! first-class values so the theorem is directly testable (see the property
//! tests in `tests/properties.rs`).

use crate::grounding::BlockedSet;
use crate::interp::IInterpretation;

/// A bi-structure `⟨B, I⟩`.
#[derive(Debug, Clone)]
pub struct BiStructure {
    /// The blocked rule instances `B`.
    pub blocked: BlockedSet,
    /// The i-interpretation `I`.
    pub interp: IInterpretation,
}

impl BiStructure {
    /// Pair a blocked set with an interpretation.
    pub fn new(blocked: BlockedSet, interp: IInterpretation) -> Self {
        BiStructure { blocked, interp }
    }

    /// The paper's `int(A)` projection.
    pub fn int(&self) -> &IInterpretation {
        &self.interp
    }

    /// Is `self ⪯ other` in the bi-structure order?
    ///
    /// `⪯` is the reflexive closure of the strict order above: either the
    /// blocked set strictly grows, or it is equal and the interpretation
    /// grows (weakly).
    pub fn le(&self, other: &BiStructure) -> bool {
        let b_sub = blocked_subset(&self.blocked, &other.blocked);
        if !b_sub {
            return false;
        }
        if self.blocked.len() < other.blocked.len() {
            return true; // B ⊂ B'
        }
        // B = B': compare interpretations zone-wise.
        interp_subset(&self.interp, &other.interp)
    }
}

fn blocked_subset(a: &BlockedSet, b: &BlockedSet) -> bool {
    a.len() <= b.len() && a.iter().all(|g| b.contains(g))
}

/// Zone-wise inclusion of i-interpretations.
///
/// Compared over decoded tuples, so interpretations built against
/// different (but compatible) vocabularies still order correctly.
pub fn interp_subset(a: &IInterpretation, b: &IInterpretation) -> bool {
    a.base().iter().all(|(p, t)| b.base().contains(p, &t))
        && a.plus().iter().all(|(p, t)| b.plus().contains(p, &t))
        && a.minus().iter().all(|(p, t)| b.minus().contains(p, &t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::RuleId;
    use crate::grounding::Grounding;
    use park_storage::{FactStore, Value, Vocabulary};
    use park_syntax::Sign;
    use std::sync::Arc;

    fn interp(src: &str) -> IInterpretation {
        IInterpretation::from_database(FactStore::from_source(Vocabulary::new(), src).unwrap())
    }

    fn g(rule: u32) -> Grounding {
        Grounding {
            rule: RuleId(rule),
            subst: Box::from([]),
        }
    }

    #[test]
    fn reflexive() {
        let a = BiStructure::new(BlockedSet::new(), interp("p."));
        assert!(a.le(&a));
    }

    #[test]
    fn blocked_growth_dominates() {
        let v = Vocabulary::new();
        let small_i = IInterpretation::from_database(
            FactStore::from_source(Arc::clone(&v), "p. q.").unwrap(),
        );
        let mut b2 = BlockedSet::new();
        b2.insert(g(0));
        // ⟨∅, {p,q}⟩ < ⟨{g}, {p}⟩ because B strictly grows, even though the
        // interpretation shrank.
        let a = BiStructure::new(BlockedSet::new(), small_i);
        let b = BiStructure::new(
            b2,
            IInterpretation::from_database(FactStore::from_source(v, "p.").unwrap()),
        );
        assert!(a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn equal_blocked_compares_interpretations() {
        let v = Vocabulary::new();
        let mut i1 =
            IInterpretation::from_database(FactStore::from_source(Arc::clone(&v), "p.").unwrap());
        let mut i2 = i1.clone();
        let q = v.pred("q", 0).unwrap();
        i2.insert_marked(Sign::Insert, q, &[]);
        let a = BiStructure::new(BlockedSet::new(), i1.clone());
        let b = BiStructure::new(BlockedSet::new(), i2.clone());
        assert!(a.le(&b));
        assert!(!b.le(&a));
        // Marks are zone-sensitive: -q is not +q.
        i1.insert_marked(Sign::Delete, q, &[]);
        let c = BiStructure::new(BlockedSet::new(), i1);
        assert!(!c.le(&b));
        let _ = Value::Int(0);
    }

    #[test]
    fn incomparable_blocked_sets() {
        let mut b1 = BlockedSet::new();
        b1.insert(g(0));
        let mut b2 = BlockedSet::new();
        b2.insert(g(1));
        let a = BiStructure::new(b1, interp("p."));
        let b = BiStructure::new(b2, interp("p."));
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn int_projection() {
        let a = BiStructure::new(BlockedSet::new(), interp("p."));
        assert_eq!(a.int().base().len(), 1);
    }
}
