//! Cross-transaction incremental evaluation (see `docs/incremental.md`).
//!
//! A resident database (`park serve`, `ActiveDatabase`) commits a sequence
//! of transactions against one program. Each transaction is semantically a
//! full `PARK(S, P, U)` evaluation from the current state `S` — but inside
//! the *incrementality-safe fragment* the whole run is determined by a small
//! delta, and the engine can keep a [`WarmState`] alive between transactions
//! and answer the next update set by semi-naive propagation seeded from `U`
//! alone.
//!
//! The fragment ([`certify_incremental`]): every rule inserts (`+` head) and
//! its body contains only positive atoms and comparison guards — no negation,
//! no event literals. A transaction additionally stays on the warm path only
//! when `U` is insert-only and no trace or metrics were requested; anything
//! else falls back to the ordinary cold run (which also refreshes the warm
//! state, via [`Engine::run_retaining`]).
//!
//! Why this is sound — the invariant the warm state maintains is
//!
//! > `base` = the committed state `S`, `plus` = exactly the heads of program
//! > groundings valid over `S`, `minus` = ∅.
//!
//! A cold run on `S` marks precisely those heads in its first Γ step; from
//! step 2 on, semi-naive enumeration is driven only by marks whose atom is
//! *not* in `S` (the Γ operator skips plus-rows shadowed by the base zone).
//! Inside the fragment validity is monotone, so every grounding valid over
//! `S` stays valid, fired, and marked — and the warm propagation seeded from
//! the zone-new `U` marks reproduces the cold run's firing stream, new-mark
//! stream, and Γ-step count exactly (`gamma_steps = 2 + propagation rounds`,
//! matching cold's seed step + rounds + fixpoint-detection step). Negation
//! breaks mark persistence, deletions break "fired ⇒ still valid", and event
//! marks are transaction-local — each of those takes the cold path.
//!
//! [`Engine::run_retaining`]: crate::fixpoint::Engine::run_retaining

use crate::compile::{CompiledLiteral, CompiledProgram, LitKind, RuleId};
use crate::fixpoint::ParkOutcome;
use crate::grounding::BlockedSet;
use crate::interp::IInterpretation;
use crate::seminaive::{self, ZoneLens};
use crate::stats::RunStats;
use crate::validity::MarkZone;
use park_storage::{Code, FactStore, PredId, Tuple, UpdateSet};
use park_syntax::Sign;
use std::sync::Arc;
use std::time::Instant;

/// Why a rule keeps its program out of the incrementality-safe fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalBlocker {
    /// A deleting head: retraction would need provenance-guided undo, and a
    /// deletion can invalidate groundings the warm state assumes persistent.
    DeleteHead,
    /// A negated body literal: a later insertion can invalidate a grounding
    /// that already fired, so marks are not persistent across transactions.
    NegatedLiteral,
    /// An event body literal: `±a` marks are transaction-local by the
    /// semantics, but the warm state carries marks across transactions.
    EventLiteral,
}

impl IncrementalBlocker {
    /// Short human-readable description of the blocking construct.
    pub fn describe(self) -> &'static str {
        match self {
            IncrementalBlocker::DeleteHead => "deleting head",
            IncrementalBlocker::NegatedLiteral => "negated body literal",
            IncrementalBlocker::EventLiteral => "event body literal",
        }
    }
}

/// One rule that forces cold evaluation, with the construct responsible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalExclusion {
    /// The offending rule.
    pub rule: RuleId,
    /// The construct that keeps it out of the fragment.
    pub reason: IncrementalBlocker,
}

/// Every rule construct that keeps `program` out of the incrementality-safe
/// fragment (at most one exclusion per rule, head checked first). Empty
/// means [`certify_incremental`] holds.
pub fn incremental_exclusions(program: &CompiledProgram) -> Vec<IncrementalExclusion> {
    let mut out = Vec::new();
    for rule in program.rules() {
        if rule.is_update {
            continue;
        }
        let reason = if rule.head_sign == Sign::Delete {
            Some(IncrementalBlocker::DeleteHead)
        } else {
            rule.body.iter().find_map(|lit| match lit {
                CompiledLiteral::Atom {
                    kind: LitKind::Neg, ..
                } => Some(IncrementalBlocker::NegatedLiteral),
                CompiledLiteral::Atom {
                    kind: LitKind::Event(_),
                    ..
                } => Some(IncrementalBlocker::EventLiteral),
                _ => None,
            })
        };
        if let Some(reason) = reason {
            out.push(IncrementalExclusion {
                rule: rule.id,
                reason,
            });
        }
    }
    out
}

/// The incrementality-safe certificate: true iff every rule has an inserting
/// head and a body of positive atoms and guards only. Certified programs are
/// conflict-free by construction (no deleting head), monotone (no negation),
/// and mark-persistent (no event literals) — the three properties the warm
/// path relies on.
pub fn certify_incremental(program: &CompiledProgram) -> bool {
    incremental_exclusions(program).is_empty()
}

/// What one warm transaction observed — the same surface a cold
/// [`ParkOutcome`] would yield for the fragment: the committed additions
/// (sorted as [`FactStore::diff`] sorts them) and the mode-independent
/// counters. `removed`, `blocked`, restarts, and conflicts are structurally
/// empty/zero inside the fragment.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Facts added to the committed state, sorted by rendered fact.
    pub added: Vec<(PredId, Tuple)>,
    /// Counters, populated exactly as the equivalent cold run would set the
    /// fingerprint-relevant ones (`gamma_steps`; restarts, conflicts, and
    /// blocked are zero). `groundings_fired` counts only the propagated
    /// firings — the reuse, not re-enumeration of the stable state.
    pub stats: RunStats,
}

/// The live evaluation state a resident database keeps between transactions.
///
/// Invariant (maintained by [`WarmState::build`] and every
/// [`WarmState::transact`]): `base` is the committed state `S`, `plus` holds
/// exactly the heads of program groundings valid over `S` (all of which are
/// themselves in `S`, since `S` is a PARK fixpoint), `minus` is empty.
#[derive(Debug, Clone)]
pub struct WarmState {
    interp: IInterpretation,
}

impl WarmState {
    /// Build a warm state from a finished cold run, or `None` when the run
    /// cannot seed one: the run must have retained its program-derived marks
    /// ([`Engine::run_retaining`]), ended with an empty deletion zone, and
    /// blocked nothing — anything else leaves consequences the warm
    /// invariant cannot represent.
    ///
    /// [`Engine::run_retaining`]: crate::fixpoint::Engine::run_retaining
    pub fn build(program: &CompiledProgram, outcome: &ParkOutcome) -> Option<WarmState> {
        let marks = outcome.program_marks.as_ref()?;
        if !outcome.blocked.is_empty() || !outcome.interpretation.minus().is_empty() {
            return None;
        }
        let mut interp = IInterpretation::from_database(outcome.database.clone());
        for (p, r) in marks.iter_rows() {
            interp.zone_mut(MarkZone::Plus).insert_row(p, r);
        }
        for req in program.index_requests() {
            interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
        }
        Some(WarmState { interp })
    }

    /// The committed state `S` this warm state answers from.
    pub fn state(&self) -> &FactStore {
        self.interp.base()
    }

    /// Evaluate one insert-only transaction in place: semi-naive propagation
    /// seeded from the zone-new `U` marks, then commit. Equivalent to (and
    /// byte-compatible with) a cold `PARK(S, P, U)` run for certified
    /// `program`s — see the module docs for the argument.
    ///
    /// The `U = ∅` fast path does per-update work only: no lens capture, no
    /// enumeration, no per-fact allocation.
    pub fn transact(
        &mut self,
        program: &CompiledProgram,
        updates: &UpdateSet,
    ) -> IncrementalReport {
        let started = Instant::now();
        debug_assert!(
            updates.iter().all(|u| u.sign == Sign::Insert),
            "deletions must take the cold path"
        );
        let mut stats = RunStats {
            effective_parallelism: 1,
            ..RunStats::default()
        };
        if updates.is_empty() {
            // Cold: step 1 marks every program-derived head (counts iff any
            // grounding is valid), the next step detects the fixpoint.
            stats.gamma_steps = if self.interp.plus().is_empty() { 1 } else { 2 };
            stats.peak_marked_atoms = self.interp.marked_len();
            stats.elapsed = started.elapsed();
            return IncrementalReport {
                added: Vec::new(),
                stats,
            };
        }
        let vocab = Arc::clone(self.interp.vocab());
        // Seed step — cold step 1: the body-less `tx` rules of `P_U` mark
        // the transaction's insertions (the program-derived heads of that
        // step are already in `plus`, by the warm invariant).
        let mut prev = ZoneLens::capture(&self.interp);
        let mut seed_marks: Vec<(PredId, Box<[Code]>)> = Vec::new();
        let mut new_marks: Vec<(PredId, Box<[Code]>)> = Vec::new();
        for u in updates.iter() {
            let row: Box<[Code]> = u.tuple.values().iter().map(|&v| vocab.encode(v)).collect();
            if self.interp.insert_marked(Sign::Insert, u.pred, &row) {
                seed_marks.push((u.pred, row.clone()));
                new_marks.push((u.pred, row));
            }
        }
        let mut curr = ZoneLens::capture(&self.interp);
        // Propagation rounds — cold steps 2…: each round enumerates exactly
        // the groundings the cold run's semi-naive step would, because only
        // marks of atoms outside the base drive enumeration and the window
        // holds exactly the previous round's zone-new marks.
        let blocked = BlockedSet::new();
        let mut fired_heads = FactStore::new(Arc::clone(&vocab));
        let mut rounds: u64 = 0;
        loop {
            let fired = seminaive::fire_new(program, &blocked, &self.interp, &prev, &curr);
            if fired.is_empty() {
                break;
            }
            stats.groundings_fired += fired.len() as u64;
            let mut any_new = false;
            for f in &fired {
                debug_assert_eq!(f.sign, Sign::Insert, "certified rules only insert");
                fired_heads.insert_row(f.pred, &f.tuple);
                if self.interp.insert_marked(f.sign, f.pred, &f.tuple) {
                    any_new = true;
                    new_marks.push((f.pred, f.tuple.clone()));
                }
            }
            if !any_new {
                break;
            }
            rounds += 1;
            prev = curr;
            curr = ZoneLens::capture(&self.interp);
        }
        // Cold counts: the seed step (a non-empty `U` always marks something
        // there, `plus` starts empty cold), each productive round, and the
        // final fixpoint-detection step.
        stats.gamma_steps = 2 + rounds;
        stats.peak_marked_atoms = self.interp.marked_len();

        // Warm-plus hygiene: a `U` mark that no program grounding derives is
        // not a program-derived head over the new state — leaving it marked
        // would desynchronize the next transaction's step dedup from cold.
        let mut removed_any = false;
        for (p, row) in &seed_marks {
            if !fired_heads.contains_row(*p, row) {
                self.interp.zone_mut(MarkZone::Plus).remove_row(*p, row);
                removed_any = true;
            }
        }
        // Commit — `incorp` restricted to what changed: zone-new marks whose
        // atom the base lacks, sorted exactly as `FactStore::diff` sorts the
        // cold run's additions.
        let mut added: Vec<(PredId, Tuple)> = Vec::new();
        for (p, row) in &new_marks {
            if self.interp.base().contains_row(*p, row) {
                continue;
            }
            self.interp.zone_mut(MarkZone::Base).insert_row(*p, row);
            added.push((*p, vocab.decode_row(row)));
        }
        added.sort_by_key(|(p, t)| vocab.display_fact(*p, t));
        if removed_any {
            // Removal invalidates the plus zone's secondary indexes; rebuild
            // the requested ones so the next transaction probes indexed.
            for req in program.index_requests() {
                if req.zone == MarkZone::Plus {
                    self.interp
                        .zone_mut(req.zone)
                        .ensure_index(req.pred, req.mask);
                }
            }
        }
        stats.elapsed = started.elapsed();
        IncrementalReport { added, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::Inertia;
    use crate::fixpoint::Engine;
    use crate::metrics::NoopMetrics;
    use crate::options::EngineOptions;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;

    fn setup(rules: &str, facts: &str) -> (Engine, FactStore) {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &parse_program(rules).unwrap(),
            EngineOptions::default(),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        (engine, db)
    }

    fn cold(engine: &Engine, db: &FactStore, updates: &UpdateSet) -> ParkOutcome {
        engine
            .run_retaining(db, updates, &mut Inertia, &mut NoopMetrics)
            .unwrap()
    }

    fn updates(db: &FactStore, src: &str) -> UpdateSet {
        UpdateSet::from_source(db.vocab(), src).unwrap()
    }

    /// Drive the same update chain warm and cold; the committed state, the
    /// added list, and the fingerprint counters must agree per transaction.
    fn assert_chain_matches(rules: &str, facts: &str, txs: &[&str]) {
        let (engine, db) = setup(rules, facts);
        assert!(certify_incremental(engine.program()));
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).expect("warm state builds");
        let mut cold_state = settle.database;
        for (i, tx) in txs.iter().enumerate() {
            let u = updates(&cold_state, tx);
            let out = cold(&engine, &cold_state, &u);
            let (cold_added, cold_removed) = cold_state.diff(&out.database);
            let report = warm.transact(engine.program(), &u);
            assert!(cold_removed.is_empty(), "tx {i}: fragment never removes");
            assert_eq!(report.added, cold_added, "tx {i}: added mismatch");
            assert_eq!(
                report.stats.gamma_steps, out.stats.gamma_steps,
                "tx {i}: gamma_steps mismatch"
            );
            assert_eq!(out.stats.restarts, 0, "tx {i}");
            assert!(out.blocked.is_empty(), "tx {i}");
            assert!(
                warm.state().same_facts(&out.database),
                "tx {i}: state mismatch: {:?} vs {:?}",
                warm.state().sorted_display(),
                out.database.sorted_display()
            );
            cold_state = out.database;
        }
    }

    #[test]
    fn certificate_accepts_positive_insert_programs() {
        let (engine, _) = setup(
            "p(X) -> +q(X). q(X), e(X, Y) -> +q(Y). X < 3, n(X) -> +m(X).",
            "",
        );
        assert!(certify_incremental(engine.program()));
        assert!(incremental_exclusions(engine.program()).is_empty());
    }

    #[test]
    fn certificate_rejects_each_blocking_construct() {
        for (rules, reason) in [
            ("p(X) -> -q(X).", IncrementalBlocker::DeleteHead),
            ("!q(X), p(X) -> +r(X).", IncrementalBlocker::NegatedLiteral),
            ("+p(X) -> +r(X).", IncrementalBlocker::EventLiteral),
            ("-p(X), q(X) -> +r(X).", IncrementalBlocker::EventLiteral),
        ] {
            let (engine, _) = setup(rules, "");
            let exclusions = incremental_exclusions(engine.program());
            assert_eq!(exclusions.len(), 1, "{rules}");
            assert_eq!(exclusions[0].reason, reason, "{rules}");
            assert!(!certify_incremental(engine.program()), "{rules}");
        }
    }

    #[test]
    fn update_rules_do_not_affect_the_certificate() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let u = updates(&db, "-p(a).");
        // P_U carries a deleting update rule; the certificate is about the
        // program's own rules (the per-transaction deletion check is the
        // caller's).
        assert!(certify_incremental(&engine.program().with_updates(&u)));
    }

    #[test]
    fn warm_chain_matches_cold_on_a_recursive_program() {
        assert_chain_matches(
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).",
            "e(a, b). e(b, c).",
            &[
                "+e(c, d).",
                "+e(d, a).",
                "",
                "+e(a, e). +e(e, f).",
                "+e(a, b).",
            ],
        );
    }

    #[test]
    fn warm_chain_matches_cold_with_guards_and_fan_in() {
        assert_chain_matches(
            "p(X), q(X) -> +r(X). r(X) -> +s(X). n(X), X < 3 -> +m(X).",
            "p(a). n(5).",
            &["+q(a).", "+n(1).", "+p(b). +q(b).", "+n(2). +n(7)."],
        );
    }

    #[test]
    fn stale_update_marks_are_scrubbed_from_the_warm_plus() {
        // tx1 inserts q(a) as a bare update (no rule derives it); tx2 makes
        // the program derive it. Without hygiene, the stale +q(a) from tx1
        // would absorb tx2's derivation and undercount gamma_steps.
        assert_chain_matches("s(X) -> +q(X).", "", &["+q(a).", "+s(a).", "+s(b)."]);
    }

    #[test]
    fn noop_transaction_touches_nothing_and_counts_like_cold() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).unwrap();
        let before = warm.state().sorted_display();
        let report = warm.transact(engine.program(), &UpdateSet::empty());
        assert!(report.added.is_empty());
        assert_eq!(report.stats.gamma_steps, 2, "program fires over the state");
        assert_eq!(warm.state().sorted_display(), before);
        // A program with no valid grounding fixpoints in one step.
        let (engine2, db2) = setup("z(X) -> +q(X).", "p(a).");
        let settle2 = cold(&engine2, &db2, &UpdateSet::empty());
        let mut warm2 = WarmState::build(engine2.program(), &settle2).unwrap();
        let report2 = warm2.transact(engine2.program(), &UpdateSet::empty());
        assert_eq!(report2.stats.gamma_steps, 1);
    }

    #[test]
    fn warm_build_refuses_runs_with_deletions_or_blocks() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a). q(b).");
        let out = cold(&engine, &db, &updates(&db, "-q(b)."));
        assert!(
            WarmState::build(engine.program(), &out).is_none(),
            "deletion-marked run must not seed a warm state"
        );
        // A run without retained marks cannot seed one either.
        let plain = engine.run(&db, &UpdateSet::empty(), &mut Inertia).unwrap();
        assert!(plain.program_marks.is_none());
        assert!(WarmState::build(engine.program(), &plain).is_none());
    }

    #[test]
    fn retained_marks_are_the_program_derived_heads() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let out = cold(&engine, &db, &updates(&db, "+z(k)."));
        let marks = out.program_marks.as_ref().unwrap();
        // q(a) is program-derived; the tx rule's z(k) is not.
        assert_eq!(marks.sorted_display(), vec!["q(a)"]);
    }
}
