//! Cross-transaction incremental evaluation (see `docs/incremental.md`).
//!
//! A resident database (`park serve`, `ActiveDatabase`) commits a sequence
//! of transactions against one program. Each transaction is semantically a
//! full `PARK(S, P, U)` evaluation from the current state `S` — but inside
//! the *incrementality-safe fragment* the whole run is determined by a small
//! delta, and the engine can keep a [`WarmState`] alive between transactions
//! and answer the next update set by semi-naive propagation seeded from `U`
//! alone.
//!
//! The fragment ([`certify_incremental`]): every rule inserts (`+` head),
//! its body contains no event literals, and negation is *stratified* — no
//! negated body literal whose predicate shares a recursive component with
//! the rule's head ([`crate::strata::Strata`] localizes the offending edges
//! when this fails). A transaction additionally stays on the warm path only
//! when no trace or metrics were requested; deletions in `U` stay warm too,
//! bailing to a cold run only when the deletion collides with a derived
//! fact (a genuine PARK conflict the policy must resolve).
//!
//! Why this is sound — the invariant the warm state maintains is
//!
//! > `base` = the committed state `S`, `plus` = exactly the heads of program
//! > groundings valid over `⟨∅, S⟩`, `minus` = ∅.
//!
//! A cold run on `S` marks precisely those heads (plus `U`) in its first Γ
//! step; from step 2 on, semi-naive enumeration is driven only by marks
//! whose atom is *not* in `S` (the Γ operator skips plus-rows shadowed by
//! the base zone) and by deletion-zone growth (which falls back to full
//! re-enumeration of the affected rules). The warm seed state — `U` marked
//! on top of the invariant — is therefore byte-for-byte the cold
//! post-step-1 state, and the warm propagation reproduces the cold run's
//! firing stream, new-mark stream, and Γ-step count exactly (`gamma_steps =
//! 2 + propagation rounds`, matching cold's seed step + rounds +
//! fixpoint-detection step).
//!
//! Stratified negation keeps the *invariant* restorable: a committed change
//! can invalidate marks (a negated predicate gained a fact, a positive one
//! lost it), so after every commit the warm state revalidates exactly the
//! strata of predicates in [`crate::strata::Strata::affected`] of the
//! changed predicates — it re-fires the rules whose heads those are and
//! drops stale marks. Recursion *through* negation would make a mark depend
//! on the Γ-step at which it was derived — history no per-predicate
//! recomputation can replay — which is why the certificate is carved along
//! SCC lines. Event marks are transaction-local by the semantics, so any
//! event literal takes the cold path.
//!
//! [`Engine::run_retaining`]: crate::fixpoint::Engine::run_retaining

use crate::compile::{CompiledLiteral, CompiledProgram, LitKind, RuleId};
use crate::fixpoint::ParkOutcome;
use crate::grounding::BlockedSet;
use crate::interp::IInterpretation;
use crate::seminaive::{self, ZoneLens};
use crate::stats::RunStats;
use crate::strata::Strata;
use crate::validity::MarkZone;
use park_storage::{Code, FactStore, PredId, Tuple, UpdateSet};
use park_syntax::Sign;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Why a rule keeps its program out of the incrementality-safe fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalBlocker {
    /// A deleting head: retraction would need provenance-guided undo, and a
    /// deletion can invalidate groundings the warm state assumes persistent.
    DeleteHead,
    /// A negated body literal closing a recursion-through-negation cycle:
    /// the literal's predicate shares a recursive component with the rule's
    /// head, so a mark depends on the Γ-step it was derived at — history the
    /// warm state cannot replay. Stratified negation (the literal's
    /// predicate in a strictly lower stratum) does *not* block.
    NegatedLiteral,
    /// An event body literal: `±a` marks are transaction-local by the
    /// semantics, but the warm state carries marks across transactions.
    EventLiteral,
}

impl IncrementalBlocker {
    /// Short human-readable description of the blocking construct.
    pub fn describe(self) -> &'static str {
        match self {
            IncrementalBlocker::DeleteHead => "deleting head",
            IncrementalBlocker::NegatedLiteral => "negation in a recursive cycle",
            IncrementalBlocker::EventLiteral => "event body literal",
        }
    }
}

/// One rule that forces cold evaluation, with the construct responsible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalExclusion {
    /// The offending rule.
    pub rule: RuleId,
    /// The construct that keeps it out of the fragment.
    pub reason: IncrementalBlocker,
}

/// Every rule construct that keeps `program` out of the incrementality-safe
/// fragment (at most one exclusion per rule, head checked first, then body
/// literals in order). Empty means [`certify_incremental`] holds.
///
/// Negated literals are judged against the program's stratum structure:
/// only a negation *inside* a recursive component (head and negated
/// predicate in one SCC) excludes — exactly the edges
/// [`Strata::offending_edges`] reports.
pub fn incremental_exclusions(program: &CompiledProgram) -> Vec<IncrementalExclusion> {
    let strata = Strata::of(program);
    exclusions_with(program, &strata)
}

/// [`incremental_exclusions`] with a pre-built stratum analysis (must be the
/// program's own).
pub fn exclusions_with(program: &CompiledProgram, strata: &Strata) -> Vec<IncrementalExclusion> {
    let mut out = Vec::new();
    for rule in program.rules() {
        if rule.is_update {
            continue;
        }
        let reason = if rule.head_sign == Sign::Delete {
            Some(IncrementalBlocker::DeleteHead)
        } else {
            rule.body.iter().find_map(|lit| match lit {
                CompiledLiteral::Atom {
                    kind: LitKind::Neg,
                    atom,
                } if strata.same_component(rule.head.pred, atom.pred) => {
                    Some(IncrementalBlocker::NegatedLiteral)
                }
                CompiledLiteral::Atom {
                    kind: LitKind::Event(_),
                    ..
                } => Some(IncrementalBlocker::EventLiteral),
                _ => None,
            })
        };
        if let Some(reason) = reason {
            out.push(IncrementalExclusion {
                rule: rule.id,
                reason,
            });
        }
    }
    out
}

/// The incrementality-safe certificate: true iff every rule has an inserting
/// head, no event literals, and only stratified negation (no negated literal
/// inside a recursive component). Certified programs are conflict-free among
/// their own rules (no deleting head — only a `U` deletion can collide) and
/// their marks are recomputable from the committed state alone, the two
/// properties the warm path relies on.
pub fn certify_incremental(program: &CompiledProgram) -> bool {
    incremental_exclusions(program).is_empty()
}

/// What one warm transaction observed — the same surface a cold
/// [`ParkOutcome`] would yield for the fragment: the committed additions and
/// removals (sorted as [`FactStore::diff`] sorts them) and the
/// mode-independent counters. `blocked`, restarts, and conflicts are
/// structurally empty/zero on the warm path (a would-be conflict bails to
/// cold instead).
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Facts added to the committed state, sorted by rendered fact.
    pub added: Vec<(PredId, Tuple)>,
    /// Facts removed from the committed state (deletions in `U` that were
    /// present), sorted by rendered fact.
    pub removed: Vec<(PredId, Tuple)>,
    /// Counters, populated exactly as the equivalent cold run would set the
    /// fingerprint-relevant ones (`gamma_steps`; restarts, conflicts, and
    /// blocked are zero). `groundings_fired` counts only the propagated
    /// firings — post-commit revalidation is maintenance, not evaluation.
    pub stats: RunStats,
}

/// The live evaluation state a resident database keeps between transactions.
///
/// Invariant (maintained by [`WarmState::build`] and every successful
/// [`WarmState::transact`]): `base` is the committed state `S`, `plus` holds
/// exactly the heads of program groundings valid over `⟨∅, S⟩` (all of which
/// are themselves in `S`, since `S` is a PARK fixpoint), `minus` is empty.
#[derive(Debug, Clone)]
pub struct WarmState {
    interp: IInterpretation,
}

impl WarmState {
    /// Build a warm state from a finished cold run, or `None` when the run
    /// cannot seed one: a run that blocked groundings has consequences the
    /// warm invariant cannot represent.
    ///
    /// Two paths restore the invariant. When the run retained its
    /// program-derived marks ([`Engine::run_retaining`]), ended with an
    /// empty deletion zone, and the program is negation-free, those marks
    /// *are* the valid-grounding heads and are adopted directly. Otherwise —
    /// deletions in the run, retained marks possibly stale under negation,
    /// or no retained marks at all — the valid groundings are recomputed
    /// from the committed state with one Γ pass, which also lets plain
    /// [`Engine::run`] outcomes and deletion transactions seed warm states.
    ///
    /// [`Engine::run_retaining`]: crate::fixpoint::Engine::run_retaining
    /// [`Engine::run`]: crate::fixpoint::Engine::run
    pub fn build(program: &CompiledProgram, outcome: &ParkOutcome) -> Option<WarmState> {
        if !outcome.blocked.is_empty() {
            return None;
        }
        let negation_free = program.rules().iter().all(|rule| {
            !rule.body.iter().any(|lit| {
                matches!(
                    lit,
                    CompiledLiteral::Atom {
                        kind: LitKind::Neg,
                        ..
                    }
                )
            })
        });
        if negation_free && outcome.interpretation.minus().is_empty() {
            if let Some(marks) = outcome.program_marks.as_ref() {
                let mut interp = IInterpretation::from_database(outcome.database.clone());
                for (p, r) in marks.iter_rows() {
                    interp.zone_mut(MarkZone::Plus).insert_row(p, r);
                }
                for req in program.index_requests() {
                    interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
                }
                return Some(WarmState { interp });
            }
        }
        // General path: recompute the valid-grounding heads over the
        // committed state `S` with one Γ pass against `⟨∅, S⟩`. At a blocked-
        // free PARK fixpoint every such head is in `S`; a deleting or
        // escaping head means the outcome is not one (e.g. an uncertified
        // program mid-chain) and cannot seed a warm state.
        let mut interp = IInterpretation::from_database(outcome.database.clone());
        for req in program.index_requests() {
            interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
        }
        let blocked = BlockedSet::new();
        let fired = crate::gamma::fire_all(program, &blocked, &interp);
        let mut heads: Vec<(PredId, Box<[Code]>)> = Vec::with_capacity(fired.len());
        for f in fired {
            if f.sign != Sign::Insert || !interp.base().contains_row(f.pred, &f.tuple) {
                return None;
            }
            heads.push((f.pred, f.tuple));
        }
        for (p, r) in &heads {
            interp.zone_mut(MarkZone::Plus).insert_row(*p, r);
        }
        for req in program.index_requests() {
            if req.zone == MarkZone::Plus {
                interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
            }
        }
        Some(WarmState { interp })
    }

    /// The committed state `S` this warm state answers from.
    pub fn state(&self) -> &FactStore {
        self.interp.base()
    }

    /// Evaluate one transaction in place: semi-naive propagation seeded from
    /// the zone-new `U` marks, commit, then revalidate the affected strata.
    /// Equivalent to (and byte-compatible with) a cold `PARK(S, P, U)` run
    /// for certified `program`s — see the module docs for the argument.
    ///
    /// Returns `None` — **leaving the state poisoned; discard it** — when
    /// the transaction provokes a genuine PARK conflict (a `U` deletion of a
    /// derived fact, a `U` insert-delete clash, or a derivation of a deleted
    /// fact): resolving it needs the policy, i.e. a cold run.
    ///
    /// The `U = ∅` fast path does per-update work only: no lens capture, no
    /// enumeration, no per-fact allocation.
    pub fn transact(
        &mut self,
        program: &CompiledProgram,
        updates: &UpdateSet,
    ) -> Option<IncrementalReport> {
        let started = Instant::now();
        let mut stats = RunStats {
            effective_parallelism: 1,
            ..RunStats::default()
        };
        if updates.is_empty() {
            // Cold: step 1 marks every program-derived head (counts iff any
            // grounding is valid), the next step detects the fixpoint.
            stats.gamma_steps = if self.interp.plus().is_empty() { 1 } else { 2 };
            stats.peak_marked_atoms = self.interp.marked_len();
            stats.elapsed = started.elapsed();
            return Some(IncrementalReport {
                added: Vec::new(),
                removed: Vec::new(),
                stats,
            });
        }
        let vocab = Arc::clone(self.interp.vocab());
        // Seed step — cold step 1: the body-less `tx` rules of `P_U` mark
        // the transaction's updates (the program-derived heads of that step
        // are already in `plus`, by the warm invariant). A `U` mark clashing
        // with the opposite zone is cold step 1's inconsistency — the
        // policy's problem, not ours.
        let mut prev = ZoneLens::capture(&self.interp);
        let mut seed_marks: Vec<(PredId, Box<[Code]>)> = Vec::new();
        let mut new_marks: Vec<(PredId, Box<[Code]>)> = Vec::new();
        for u in updates.iter() {
            let row: Box<[Code]> = u.tuple.values().iter().map(|&v| vocab.encode(v)).collect();
            let opposite = match u.sign {
                Sign::Insert => Sign::Delete,
                Sign::Delete => Sign::Insert,
            };
            if self.interp.contains_marked(opposite, u.pred, &row) {
                return None;
            }
            if self.interp.insert_marked(u.sign, u.pred, &row) && u.sign == Sign::Insert {
                seed_marks.push((u.pred, row.clone()));
                new_marks.push((u.pred, row));
            }
        }
        let mut curr = ZoneLens::capture(&self.interp);
        // Propagation rounds — cold steps 2…: each round enumerates exactly
        // the groundings the cold run's semi-naive step would, because only
        // marks of atoms outside the base (and deletion-zone growth) drive
        // enumeration, and the window holds exactly the previous round's
        // zone-new marks.
        let blocked = BlockedSet::new();
        let mut fired_heads = FactStore::new(Arc::clone(&vocab));
        let mut rounds: u64 = 0;
        loop {
            let fired = seminaive::fire_new(program, &blocked, &self.interp, &prev, &curr);
            if fired.is_empty() {
                break;
            }
            stats.groundings_fired += fired.len() as u64;
            let mut any_new = false;
            for f in &fired {
                debug_assert_eq!(f.sign, Sign::Insert, "certified rules only insert");
                // Deriving a fact `U` deletes is cold's `+a`/`-a` conflict.
                if self.interp.contains_marked(Sign::Delete, f.pred, &f.tuple) {
                    return None;
                }
                fired_heads.insert_row(f.pred, &f.tuple);
                if self.interp.insert_marked(f.sign, f.pred, &f.tuple) {
                    any_new = true;
                    new_marks.push((f.pred, f.tuple.clone()));
                }
            }
            if !any_new {
                break;
            }
            rounds += 1;
            prev = curr;
            curr = ZoneLens::capture(&self.interp);
        }
        // Cold counts: the seed step (a non-empty `U` always marks something
        // there, cold's zones start empty), each productive round, and the
        // final fixpoint-detection step.
        stats.gamma_steps = 2 + rounds;
        stats.peak_marked_atoms = self.interp.marked_len();

        // Warm-plus hygiene: a `U` mark that no program grounding derives is
        // not a program-derived head over the new state — leaving it marked
        // would desynchronize the next transaction's step dedup from cold.
        let mut plus_removed = false;
        for (p, row) in &seed_marks {
            if !fired_heads.contains_row(*p, row) {
                self.interp.zone_mut(MarkZone::Plus).remove_row(*p, row);
                plus_removed = true;
            }
        }
        // Commit — `incorp` restricted to what changed: zone-new plus marks
        // whose atom the base lacks enter it, deletion marks present in the
        // base leave it, each list sorted exactly as `FactStore::diff` sorts
        // the cold run's.
        let mut added: Vec<(PredId, Tuple)> = Vec::new();
        for (p, row) in &new_marks {
            if self.interp.base().contains_row(*p, row) {
                continue;
            }
            self.interp.zone_mut(MarkZone::Base).insert_row(*p, row);
            added.push((*p, vocab.decode_row(row)));
        }
        added.sort_by_key(|(p, t)| vocab.display_fact(*p, t));
        let minus_rows: Vec<(PredId, Box<[Code]>)> = self
            .interp
            .minus()
            .iter_rows()
            .map(|(p, r)| (p, r.into()))
            .collect();
        let mut removed: Vec<(PredId, Tuple)> = Vec::new();
        let mut base_removed = false;
        for (p, row) in &minus_rows {
            // The bail above guarantees `plus ∩ minus = ∅`, so a base
            // removal never orphans a plus mark.
            debug_assert!(!self.interp.plus().contains_row(*p, row));
            if self.interp.zone_mut(MarkZone::Base).remove_row(*p, row) {
                removed.push((*p, vocab.decode_row(row)));
                base_removed = true;
            }
        }
        removed.sort_by_key(|(p, t)| vocab.display_fact(*p, t));
        self.interp.zone_mut(MarkZone::Minus).clear();

        // Invariant restoration: a commit can strand marks — a positive
        // literal's predicate lost facts, a negated literal's predicate
        // gained them. Re-fire every rule whose head predicate those rules
        // reach and drop the stale marks (recomputation against the new
        // state only ever removes; see docs/incremental.md §5). Predicates
        // outside `affected(changed)` keep their warm marks untouched — the
        // stratum-replay invariant.
        let removed_preds: HashSet<PredId> = removed.iter().map(|&(p, _)| p).collect();
        let added_preds: HashSet<PredId> = added.iter().map(|&(p, _)| p).collect();
        let mut revalidate: HashSet<PredId> = HashSet::new();
        for rule in program.rules() {
            if rule.is_update {
                continue;
            }
            let triggered = rule.body.iter().any(|lit| match lit {
                CompiledLiteral::Atom {
                    kind: LitKind::Pos,
                    atom,
                } => removed_preds.contains(&atom.pred),
                CompiledLiteral::Atom {
                    kind: LitKind::Neg,
                    atom,
                } => added_preds.contains(&atom.pred),
                _ => false,
            });
            if triggered {
                revalidate.insert(rule.head.pred);
            }
        }
        if !revalidate.is_empty() {
            debug_assert!(
                {
                    let strata = Strata::of(program);
                    let affected =
                        strata.affected(removed_preds.iter().chain(&added_preds).copied());
                    revalidate.iter().all(|p| affected.contains(p))
                },
                "revalidation must stay inside the affected strata"
            );
            let mut fired = Vec::new();
            for rule in program.rules() {
                if !rule.is_update && revalidate.contains(&rule.head.pred) {
                    crate::gamma::fire_rule(rule, &blocked, &self.interp, &mut fired);
                }
            }
            let mut exact = FactStore::new(Arc::clone(&vocab));
            for f in &fired {
                debug_assert_eq!(f.sign, Sign::Insert, "certified rules only insert");
                exact.insert_row(f.pred, &f.tuple);
            }
            for &p in &revalidate {
                let stale: Vec<Box<[Code]>> = match self.interp.plus().relation(p) {
                    Some(rel) => rel
                        .rows()
                        .filter(|r| !exact.contains_row(p, r))
                        .map(Into::into)
                        .collect(),
                    None => Vec::new(),
                };
                for row in &stale {
                    self.interp.zone_mut(MarkZone::Plus).remove_row(p, row);
                    plus_removed = true;
                }
            }
            for (p, r) in exact.iter_rows() {
                if revalidate.contains(&p) {
                    self.interp.zone_mut(MarkZone::Plus).insert_row(p, r);
                }
            }
        }
        // Removal invalidates a zone's secondary indexes; rebuild the
        // requested ones so the next transaction probes indexed.
        if plus_removed || base_removed {
            for req in program.index_requests() {
                if (req.zone == MarkZone::Plus && plus_removed)
                    || (req.zone == MarkZone::Base && base_removed)
                {
                    self.interp
                        .zone_mut(req.zone)
                        .ensure_index(req.pred, req.mask);
                }
            }
        }
        stats.elapsed = started.elapsed();
        Some(IncrementalReport {
            added,
            removed,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::Inertia;
    use crate::fixpoint::Engine;
    use crate::metrics::NoopMetrics;
    use crate::options::EngineOptions;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;

    fn setup(rules: &str, facts: &str) -> (Engine, FactStore) {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &parse_program(rules).unwrap(),
            EngineOptions::default(),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        (engine, db)
    }

    fn cold(engine: &Engine, db: &FactStore, updates: &UpdateSet) -> ParkOutcome {
        engine
            .run_retaining(db, updates, &mut Inertia, &mut NoopMetrics)
            .unwrap()
    }

    fn updates(db: &FactStore, src: &str) -> UpdateSet {
        UpdateSet::from_source(db.vocab(), src).unwrap()
    }

    /// Drive the same update chain warm and cold; the committed state, the
    /// added/removed lists, and the fingerprint counters must agree per
    /// transaction.
    fn assert_chain_matches(rules: &str, facts: &str, txs: &[&str]) {
        let (engine, db) = setup(rules, facts);
        assert!(certify_incremental(engine.program()));
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).expect("warm state builds");
        let mut cold_state = settle.database;
        for (i, tx) in txs.iter().enumerate() {
            let u = updates(&cold_state, tx);
            let out = cold(&engine, &cold_state, &u);
            let (cold_added, cold_removed) = cold_state.diff(&out.database);
            let report = warm
                .transact(engine.program(), &u)
                .unwrap_or_else(|| panic!("tx {i}: warm path bailed"));
            assert_eq!(report.added, cold_added, "tx {i}: added mismatch");
            assert_eq!(report.removed, cold_removed, "tx {i}: removed mismatch");
            assert_eq!(
                report.stats.gamma_steps, out.stats.gamma_steps,
                "tx {i}: gamma_steps mismatch"
            );
            assert_eq!(out.stats.restarts, 0, "tx {i}");
            assert!(out.blocked.is_empty(), "tx {i}");
            assert!(
                warm.state().same_facts(&out.database),
                "tx {i}: state mismatch: {:?} vs {:?}",
                warm.state().sorted_display(),
                out.database.sorted_display()
            );
            cold_state = out.database;
        }
    }

    #[test]
    fn certificate_accepts_positive_insert_programs() {
        let (engine, _) = setup(
            "p(X) -> +q(X). q(X), e(X, Y) -> +q(Y). X < 3, n(X) -> +m(X).",
            "",
        );
        assert!(certify_incremental(engine.program()));
        assert!(incremental_exclusions(engine.program()).is_empty());
    }

    #[test]
    fn certificate_accepts_stratified_negation() {
        // Negation on lower strata only: `q` and `d` never depend back on
        // the rules that negate them.
        let (engine, _) = setup(
            "p(X), !q(X) -> +r(X). r(X), e(X, Y) -> +r(Y). r(X), !d(X) -> +s(X).",
            "",
        );
        assert!(certify_incremental(engine.program()));
    }

    #[test]
    fn certificate_rejects_each_blocking_construct() {
        for (rules, reason) in [
            ("p(X) -> -q(X).", IncrementalBlocker::DeleteHead),
            (
                "move(X, Y), !win(Y) -> +win(X).",
                IncrementalBlocker::NegatedLiteral,
            ),
            ("+p(X) -> +r(X).", IncrementalBlocker::EventLiteral),
            ("-p(X), q(X) -> +r(X).", IncrementalBlocker::EventLiteral),
        ] {
            let (engine, _) = setup(rules, "");
            let exclusions = incremental_exclusions(engine.program());
            assert_eq!(exclusions.len(), 1, "{rules}");
            assert_eq!(exclusions[0].reason, reason, "{rules}");
            assert!(!certify_incremental(engine.program()), "{rules}");
        }
    }

    #[test]
    fn certificate_rejects_mutual_recursion_through_negation() {
        let (engine, _) = setup("p(X), !q(X) -> +q2(X). q2(X) -> +q(X).", "");
        let exclusions = incremental_exclusions(engine.program());
        assert_eq!(exclusions.len(), 1);
        assert_eq!(exclusions[0].reason, IncrementalBlocker::NegatedLiteral);
    }

    #[test]
    fn update_rules_do_not_affect_the_certificate() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let u = updates(&db, "-p(a).");
        // P_U carries a deleting update rule; the certificate is about the
        // program's own rules (the per-transaction conflict check is the
        // warm path's bail).
        assert!(certify_incremental(&engine.program().with_updates(&u)));
    }

    #[test]
    fn warm_chain_matches_cold_on_a_recursive_program() {
        assert_chain_matches(
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).",
            "e(a, b). e(b, c).",
            &[
                "+e(c, d).",
                "+e(d, a).",
                "",
                "+e(a, e). +e(e, f).",
                "+e(a, b).",
            ],
        );
    }

    #[test]
    fn warm_chain_matches_cold_with_guards_and_fan_in() {
        assert_chain_matches(
            "p(X), q(X) -> +r(X). r(X) -> +s(X). n(X), X < 3 -> +m(X).",
            "p(a). n(5).",
            &["+q(a).", "+n(1).", "+p(b). +q(b).", "+n(2). +n(7)."],
        );
    }

    #[test]
    fn warm_chain_matches_cold_with_stratified_negation() {
        assert_chain_matches(
            "p(X), !q(X) -> +s(X). s(X), e(X, Y) -> +s(Y).",
            "p(a). p(b). q(b). e(a, c).",
            &["+p(d).", "+q(zz).", "+e(c, f).", "", "+p(e). +q(e)."],
        );
    }

    #[test]
    fn warm_chain_matches_cold_on_base_deletions() {
        // Deleting a base-only fact stays warm; the affected stratum
        // revalidates (s loses derivations when p shrinks or q grows).
        assert_chain_matches(
            "p(X), !q(X) -> +s(X).",
            "p(a). p(b). base(z).",
            &["-base(z).", "+q(a).", "-p(b).", "+p(c).", "-p(zz)."],
        );
    }

    #[test]
    fn warm_chain_mixes_inserts_and_deletions() {
        assert_chain_matches(
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z). u(X) -> +v(X).",
            "u(k). raw(a).",
            &["+u(m). -raw(a).", "-u(k).", "+raw(b). +u(k)."],
        );
    }

    #[test]
    fn deleting_a_derived_fact_bails_to_cold() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).unwrap();
        // q(a) is program-derived: deleting it is a PARK conflict only the
        // policy can resolve — the warm path must refuse.
        let u = updates(warm.state(), "-q(a).");
        assert!(warm.transact(engine.program(), &u).is_none());
    }

    #[test]
    fn insert_delete_clash_in_one_update_set_bails() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).unwrap();
        let u = updates(warm.state(), "+z(k). -z(k).");
        assert!(warm.transact(engine.program(), &u).is_none());
    }

    #[test]
    fn deriving_a_deleted_fact_bails() {
        let (engine, db) = setup("trig(X) -> +q(X).", "q0(a).");
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).unwrap();
        // +trig(a) derives q(a) while -q(a) is marked: cold resolves the
        // conflict through the policy; warm refuses.
        let u = updates(warm.state(), "+trig(a). -q(a).");
        assert!(warm.transact(engine.program(), &u).is_none());
    }

    #[test]
    fn stale_update_marks_are_scrubbed_from_the_warm_plus() {
        // tx1 inserts q(a) as a bare update (no rule derives it); tx2 makes
        // the program derive it. Without hygiene, the stale +q(a) from tx1
        // would absorb tx2's derivation and undercount gamma_steps.
        assert_chain_matches("s(X) -> +q(X).", "", &["+q(a).", "+s(a).", "+s(b)."]);
    }

    #[test]
    fn noop_transaction_touches_nothing_and_counts_like_cold() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let settle = cold(&engine, &db, &UpdateSet::empty());
        let mut warm = WarmState::build(engine.program(), &settle).unwrap();
        let before = warm.state().sorted_display();
        let report = warm
            .transact(engine.program(), &UpdateSet::empty())
            .unwrap();
        assert!(report.added.is_empty());
        assert!(report.removed.is_empty());
        assert_eq!(report.stats.gamma_steps, 2, "program fires over the state");
        assert_eq!(warm.state().sorted_display(), before);
        // A program with no valid grounding fixpoints in one step.
        let (engine2, db2) = setup("z(X) -> +q(X).", "p(a).");
        let settle2 = cold(&engine2, &db2, &UpdateSet::empty());
        let mut warm2 = WarmState::build(engine2.program(), &settle2).unwrap();
        let report2 = warm2
            .transact(engine2.program(), &UpdateSet::empty())
            .unwrap();
        assert_eq!(report2.stats.gamma_steps, 1);
    }

    #[test]
    fn warm_build_refuses_blocked_runs_but_accepts_deletion_and_plain_runs() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a). q(b).");
        // A deletion-marked run now seeds a warm state via the recompute
        // path, and chains byte-identically afterwards.
        let out = cold(&engine, &db, &updates(&db, "-q(b)."));
        let mut warm =
            WarmState::build(engine.program(), &out).expect("deletion run seeds via recompute");
        let u = updates(warm.state(), "+p(c).");
        let next = cold(&engine, &out.database, &u);
        let report = warm.transact(engine.program(), &u).unwrap();
        let (cold_added, _) = out.database.diff(&next.database);
        assert_eq!(report.added, cold_added);
        assert!(warm.state().same_facts(&next.database));
        // A run without retained marks seeds one too.
        let plain = engine.run(&db, &UpdateSet::empty(), &mut Inertia).unwrap();
        assert!(plain.program_marks.is_none());
        assert!(WarmState::build(engine.program(), &plain).is_some());
        // A blocked run cannot: the blocked set is not representable.
        let (engine3, db3) = setup("p(X) -> +q(X). p(X) -> -q(X).", "p(a).");
        let blocked_run = cold(&engine3, &db3, &UpdateSet::empty());
        assert!(!blocked_run.blocked.is_empty());
        assert!(WarmState::build(engine3.program(), &blocked_run).is_none());
    }

    #[test]
    fn retained_marks_are_the_program_derived_heads() {
        let (engine, db) = setup("p(X) -> +q(X).", "p(a).");
        let out = cold(&engine, &db, &updates(&db, "+z(k)."));
        let marks = out.program_marks.as_ref().unwrap();
        // q(a) is program-derived; the tx rule's z(k) is not.
        assert_eq!(marks.sorted_display(), vec!["q(a)"]);
    }
}
