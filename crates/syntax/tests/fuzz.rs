//! Robustness: the parser must never panic, whatever bytes it is fed —
//! every failure mode is a typed `ParseError`.

use park_syntax::{parse_facts, parse_program, parse_source, parse_updates};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode input: errors allowed, panics not.
    #[test]
    fn parse_source_never_panics(src in "\\PC{0,120}") {
        let _ = parse_source(&src);
        let _ = parse_program(&src);
        let _ = parse_facts(&src);
        let _ = parse_updates(&src);
    }

    /// Inputs built from the language's own token alphabet reach deeper
    /// parser states; still no panics.
    #[test]
    fn parse_tokenish_soup_never_panics(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "p", "q(", ")", ",", ".", "->", "+", "-", "!", "not", "X",
                "@priority(", "3", "r1:", "\"s\"", "<", ">=", "=", "!=", "%c\n",
            ]),
            0..40,
        )
    ) {
        let src: String = parts.join(" ");
        let _ = parse_source(&src);
    }

    /// Valid programs stay valid after printing (print→parse is total on
    /// parser output).
    #[test]
    fn reprint_of_valid_programs_parses(
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Derive a pseudo-random but always-valid program from the seed.
        let mut rules = String::new();
        for i in 0..n {
            let v = seed.wrapping_add(i as u64);
            let neg = if v % 3 == 0 { "!" } else { "" };
            let sign = if v % 2 == 0 { "+" } else { "-" };
            rules.push_str(&format!(
                "p{}(X), {neg}q{}(X) -> {sign}r{}(X).\n",
                v % 4,
                (v >> 2) % 4,
                (v >> 4) % 4
            ));
        }
        let p1 = parse_program(&rules).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        prop_assert_eq!(p1.rules.len(), p2.rules.len());
    }
}
