//! Abstract syntax for the PARK active-rule language.
//!
//! The language follows Section 2 of the paper. An *active rule* has the form
//!
//! ```text
//! l1, l2, ..., ln -> ±l0.
//! ```
//!
//! where each body literal `li` is a positive atom, a negated atom (negation
//! as failure, written `!a` or `not a`), or — for full event–condition–action
//! rules (Section 4.3) — an *event literal* `+a` / `-a` that is valid iff the
//! corresponding marked atom occurs in the current i-interpretation. The head
//! is a positive atom prefixed by `+` (insert) or `-` (delete).
//!
//! Terms are variables (identifiers starting with an uppercase letter or
//! `_`) or constants (lowercase identifiers, quoted symbols, or integers).

use std::fmt;

/// A source location (1-based line and column), carried through parsing for
/// error reporting. `Span::synthetic()` marks nodes built programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line; 0 for synthetic nodes.
    pub line: u32,
    /// 1-based column; 0 for synthetic nodes.
    pub col: u32,
}

impl Span {
    /// Location for AST nodes constructed in code rather than parsed.
    pub const fn synthetic() -> Self {
        Span { line: 0, col: 0 }
    }

    /// True if this node was constructed programmatically.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::synthetic()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// A constant: an uninterpreted symbol or a 64-bit integer.
///
/// The paper's database instances are sets of ground atoms over constant
/// symbols; integers are a convenience for workloads and examples.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An uninterpreted symbol such as `a`, `alice`, or `"Hello world"`.
    Sym(String),
    /// A 64-bit integer such as `42` or `-7`.
    Int(i64),
}

impl Const {
    /// Build a symbol constant.
    pub fn sym(s: impl Into<String>) -> Self {
        Const::Sym(s.into())
    }

    /// Build an integer constant.
    pub fn int(i: i64) -> Self {
        Const::Int(i)
    }

    /// True if the symbol can be printed bare (no quoting needed): a
    /// lowercase letter followed by alphanumerics/underscores.
    pub fn is_bare_symbol(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => {
                if Const::is_bare_symbol(s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
                }
            }
            Const::Int(i) => write!(f, "{i}"),
        }
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, e.g. `X`, `Salary`, `_tmp`.
    Var(String),
    /// A constant.
    Const(Const),
}

impl Term {
    /// Build a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Build a symbol-constant term.
    pub fn sym(s: impl Into<String>) -> Self {
        Term::Const(Const::sym(s))
    }

    /// Build an integer-constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Const::int(i))
    }

    /// True if the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this is a constant.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom `p(t1, ..., tn)`. A zero-ary atom is written without parentheses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: String,
    /// Argument terms; empty for propositional atoms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom from a predicate name and argument terms.
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// Build a propositional (zero-ary) atom.
    pub fn prop(pred: impl Into<String>) -> Self {
        Atom {
            pred: pred.into(),
            args: Vec::new(),
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// True if every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Iterate over the variable names occurring in the atom (with
    /// duplicates, in argument order).
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|t| t.as_var())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The polarity of an update action: insertion (`+`) or deletion (`-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// `+a`: insert `a` into the database.
    Insert,
    /// `-a`: delete `a` from the database.
    Delete,
}

impl Sign {
    /// The textual prefix, `+` or `-`.
    pub fn prefix(self) -> char {
        match self {
            Sign::Insert => '+',
            Sign::Delete => '-',
        }
    }

    /// The opposite polarity.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Insert => Sign::Delete,
            Sign::Delete => Sign::Insert,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix())
    }
}

/// A comparison operator for guard literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompOp {
    /// `=` — equality (any value kind).
    Eq,
    /// `!=` — inequality (any value kind).
    Ne,
    /// `<` — integers only.
    Lt,
    /// `<=` — integers only.
    Le,
    /// `>` — integers only.
    Gt,
    /// `>=` — integers only.
    Ge,
}

impl CompOp {
    /// The concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }

    /// Evaluate on ordered operands (callers map values to a common
    /// ordering first); `Eq`/`Ne` short-circuit on raw equality.
    pub fn eval_ordering(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CompOp::Eq, Equal)
                | (CompOp::Ne, Less)
                | (CompOp::Ne, Greater)
                | (CompOp::Lt, Less)
                | (CompOp::Le, Less)
                | (CompOp::Le, Equal)
                | (CompOp::Gt, Greater)
                | (CompOp::Ge, Greater)
                | (CompOp::Ge, Equal)
        )
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A body literal of an active rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BodyLiteral {
    /// A positive condition: valid iff `a ∈ I` or `+a ∈ I` (Section 4.2).
    Pos(Atom),
    /// A negated condition (negation as failure): valid iff `-a ∈ I` or
    /// neither `a` nor `+a` is in `I` (Section 4.2).
    Neg(Atom),
    /// An insertion event `+a`: valid iff `+a ∈ I` (Section 4.3).
    Event(Sign, Atom),
    /// A comparison guard `t1 op t2` — an **extension** beyond the paper
    /// (every rule system it cites has one). Guards are pure filters:
    /// their variables must be bound by binding literals (an extra safety
    /// condition), `=`/`!=` apply to any constants, the order comparisons
    /// to integers only (false on symbols).
    Compare(CompOp, Term, Term),
}

impl BodyLiteral {
    /// Build a positive literal.
    pub fn pos(atom: Atom) -> Self {
        BodyLiteral::Pos(atom)
    }

    /// Build a negated literal.
    pub fn neg(atom: Atom) -> Self {
        BodyLiteral::Neg(atom)
    }

    /// Build an insertion-event literal `+a`.
    pub fn ins(atom: Atom) -> Self {
        BodyLiteral::Event(Sign::Insert, atom)
    }

    /// Build a deletion-event literal `-a`.
    pub fn del(atom: Atom) -> Self {
        BodyLiteral::Event(Sign::Delete, atom)
    }

    /// The underlying atom, for atom-shaped literals (`None` for guards).
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            BodyLiteral::Pos(a) | BodyLiteral::Neg(a) | BodyLiteral::Event(_, a) => Some(a),
            BodyLiteral::Compare(..) => None,
        }
    }

    /// Iterate over the variable names occurring in the literal.
    pub fn vars(&self) -> Box<dyn Iterator<Item = &str> + '_> {
        match self {
            BodyLiteral::Pos(a) | BodyLiteral::Neg(a) | BodyLiteral::Event(_, a) => {
                Box::new(a.vars())
            }
            BodyLiteral::Compare(_, l, r) => Box::new(l.as_var().into_iter().chain(r.as_var())),
        }
    }

    /// True for literals that *bind* variables when matched extensionally:
    /// positive literals (matched against `I° ∪ I⁺`) and event literals
    /// (matched against `I⁺` / `I⁻`). Negated literals and guards only
    /// test.
    pub fn is_binding(&self) -> bool {
        !matches!(self, BodyLiteral::Neg(_) | BodyLiteral::Compare(..))
    }
}

impl fmt::Display for BodyLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyLiteral::Pos(a) => write!(f, "{a}"),
            BodyLiteral::Neg(a) => write!(f, "!{a}"),
            BodyLiteral::Event(s, a) => write!(f, "{s}{a}"),
            BodyLiteral::Compare(op, l, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// A rule head: a signed positive atom, `+a` or `-a`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Head {
    /// Insert or delete.
    pub sign: Sign,
    /// The atom to insert or delete.
    pub atom: Atom,
}

impl Head {
    /// Build an insertion head `+a`.
    pub fn insert(atom: Atom) -> Self {
        Head {
            sign: Sign::Insert,
            atom,
        }
    }

    /// Build a deletion head `-a`.
    pub fn delete(atom: Atom) -> Self {
        Head {
            sign: Sign::Delete,
            atom,
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sign, self.atom)
    }
}

/// An active rule `body -> head.` with optional metadata.
///
/// A rule with an empty body (`-> +a.`) fires unconditionally; the ECA
/// construction `P_U` of Section 4.3 models transaction updates with such
/// rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Optional rule label (`r1: body -> head.`), used by tracing and the
    /// rule-priority policy.
    pub name: Option<String>,
    /// Priority for priority-based conflict resolution (`@priority(n)`).
    /// Higher wins. Defaults to 0.
    pub priority: i32,
    /// Body literals; empty for unconditional rules.
    pub body: Vec<BodyLiteral>,
    /// The signed head.
    pub head: Head,
    /// Source location of the rule, if parsed.
    pub span: Span,
}

impl Rule {
    /// Build an anonymous, priority-0 rule.
    pub fn new(body: Vec<BodyLiteral>, head: Head) -> Self {
        Rule {
            name: None,
            priority: 0,
            body,
            head,
            span: Span::synthetic(),
        }
    }

    /// Attach a name to the rule (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Attach a priority to the rule (builder style).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Iterate over all variable names in the rule (body then head, with
    /// duplicates).
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.body
            .iter()
            .flat_map(|l| l.vars())
            .chain(self.head.atom.vars())
    }

    /// A human-readable identifier: the name if present, else `rule@line`.
    pub fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None if self.span.is_synthetic() => "<anonymous>".to_string(),
            None => format!("rule@{}", self.span),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.priority != 0 {
            write!(f, "@priority({}) ", self.priority)?;
        }
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        if !self.body.is_empty() {
            write!(f, " ")?;
        }
        write!(f, "-> {}.", self.head)
    }
}

/// A parsed ground fact (database tuple), e.g. `p(a, 3).`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// The ground atom. Invariant (checked by the parser and
    /// [`Fact::new`]): every argument is a constant.
    pub atom: Atom,
    /// Source location, if parsed.
    pub span: Span,
}

impl Fact {
    /// Build a fact, returning `None` if the atom is not ground.
    pub fn new(atom: Atom) -> Option<Self> {
        atom.is_ground().then_some(Fact {
            atom,
            span: Span::synthetic(),
        })
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.", self.atom)
    }
}

/// A set of active rules (the paper's program `P`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order. Rule order carries no semantic weight in
    /// PARK itself but is used by some baselines and policies.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Build a program from rules.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Number of rules (`size(P)` in the paper's complexity argument).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Look up a rule by name.
    pub fn rule_by_name(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name.as_deref() == Some(name))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// The result of parsing a source file: rules and facts may be interleaved
/// in the source; they are split here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceFile {
    /// The active rules.
    pub program: Program,
    /// The ground facts (a database instance fragment).
    pub facts: Vec<Fact>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom_pxy() -> Atom {
        Atom::new("p", vec![Term::var("X"), Term::var("Y")])
    }

    #[test]
    fn const_display_quotes_non_bare_symbols() {
        assert_eq!(Const::sym("abc").to_string(), "abc");
        assert_eq!(Const::sym("a_b9").to_string(), "a_b9");
        assert_eq!(Const::sym("Hello world").to_string(), "\"Hello world\"");
        assert_eq!(Const::sym("x\"y").to_string(), "\"x\\\"y\"");
        assert_eq!(Const::sym("").to_string(), "\"\"");
        assert_eq!(Const::int(-3).to_string(), "-3");
    }

    #[test]
    fn bare_symbol_classification() {
        assert!(Const::is_bare_symbol("a"));
        assert!(Const::is_bare_symbol("abc_1"));
        assert!(!Const::is_bare_symbol("Abc"));
        assert!(!Const::is_bare_symbol("_x"));
        assert!(!Const::is_bare_symbol("1a"));
        assert!(!Const::is_bare_symbol(""));
        assert!(!Const::is_bare_symbol("a-b"));
    }

    #[test]
    fn atom_display_propositional_and_compound() {
        assert_eq!(Atom::prop("p").to_string(), "p");
        assert_eq!(atom_pxy().to_string(), "p(X, Y)");
        let ground = Atom::new("q", vec![Term::sym("a"), Term::int(7)]);
        assert_eq!(ground.to_string(), "q(a, 7)");
    }

    #[test]
    fn atom_groundness() {
        assert!(Atom::prop("p").is_ground());
        assert!(!atom_pxy().is_ground());
        assert!(Atom::new("q", vec![Term::sym("a")]).is_ground());
    }

    #[test]
    fn literal_display_and_binding() {
        let a = Atom::new("p", vec![Term::var("X")]);
        assert_eq!(BodyLiteral::pos(a.clone()).to_string(), "p(X)");
        assert_eq!(BodyLiteral::neg(a.clone()).to_string(), "!p(X)");
        assert_eq!(BodyLiteral::ins(a.clone()).to_string(), "+p(X)");
        assert_eq!(BodyLiteral::del(a.clone()).to_string(), "-p(X)");
        assert!(BodyLiteral::pos(a.clone()).is_binding());
        assert!(BodyLiteral::ins(a.clone()).is_binding());
        assert!(BodyLiteral::del(a.clone()).is_binding());
        assert!(!BodyLiteral::neg(a).is_binding());
    }

    #[test]
    fn rule_display_roundtrips_shape() {
        let r = Rule::new(
            vec![
                BodyLiteral::pos(Atom::new("emp", vec![Term::var("X")])),
                BodyLiteral::neg(Atom::new("active", vec![Term::var("X")])),
            ],
            Head::delete(Atom::new("payroll", vec![Term::var("X"), Term::var("S")])),
        )
        .named("r1")
        .with_priority(2);
        assert_eq!(
            r.to_string(),
            "@priority(2) r1: emp(X), !active(X) -> -payroll(X, S)."
        );
    }

    #[test]
    fn bodyless_rule_display() {
        let r = Rule::new(vec![], Head::insert(Atom::new("q", vec![Term::sym("b")])));
        assert_eq!(r.to_string(), "-> +q(b).");
    }

    #[test]
    fn rule_vars_iterates_body_then_head() {
        let r = Rule::new(
            vec![BodyLiteral::pos(atom_pxy())],
            Head::insert(Atom::new("q", vec![Term::var("Y"), Term::var("Z")])),
        );
        let vs: Vec<&str> = r.vars().collect();
        assert_eq!(vs, vec!["X", "Y", "Y", "Z"]);
    }

    #[test]
    fn fact_requires_ground_atom() {
        assert!(Fact::new(Atom::new("p", vec![Term::sym("a")])).is_some());
        assert!(Fact::new(atom_pxy()).is_none());
    }

    #[test]
    fn sign_flip_and_prefix() {
        assert_eq!(Sign::Insert.flip(), Sign::Delete);
        assert_eq!(Sign::Delete.flip(), Sign::Insert);
        assert_eq!(Sign::Insert.prefix(), '+');
        assert_eq!(Sign::Delete.prefix(), '-');
    }

    #[test]
    fn program_lookup_by_name() {
        let p = Program::from_rules(vec![
            Rule::new(vec![], Head::insert(Atom::prop("a"))).named("r1"),
            Rule::new(vec![], Head::insert(Atom::prop("b"))).named("r2"),
        ]);
        assert_eq!(p.len(), 2);
        assert!(p.rule_by_name("r2").is_some());
        assert!(p.rule_by_name("r3").is_none());
    }
}
