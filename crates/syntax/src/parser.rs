//! Recursive-descent parser for the `.park` rule language.
//!
//! Grammar (comments run from `%` or `//` to end of line):
//!
//! ```text
//! source     := item* EOF
//! item       := annotation* labeled
//! annotation := '@' IDENT '(' (INT | IDENT) ')'
//! labeled    := (IDENT ':')? clause
//! clause     := atom '.'                      -- a ground fact
//!             | body? '->' ('+'|'-') atom '.' -- an active rule
//! body       := literal (',' literal)*
//! literal    := '!' atom | 'not' atom | '+' atom | '-' atom | atom
//! atom       := IDENT ('(' term (',' term)* ')')?
//! term       := VAR | IDENT | INT | STRING
//! ```
//!
//! Facts must be ground; annotations and labels are only meaningful on
//! rules. Rules with an empty body (`-> +q(b).`) encode unconditional
//! updates, as used by the Section 4.3 `P_U` construction.

use crate::ast::{
    Atom, BodyLiteral, CompOp, Const, Fact, Head, Program, Rule, Sign, SourceFile, Term,
};
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{tokenize, Spanned, Token};
use std::collections::HashSet;

/// Parse a complete source file (rules and facts, interleaved).
pub fn parse_source(src: &str) -> Result<SourceFile, ParseError> {
    Parser::new(src)?.source()
}

/// Parse a source expected to contain only rules.
///
/// Facts in the input are rejected with an [`ParseErrorKind::Expected`]
/// error, which keeps program files and data files honest.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let file = parse_source(src)?;
    if let Some(f) = file.facts.first() {
        return Err(ParseError {
            span: f.span,
            kind: ParseErrorKind::Expected {
                expected: "a rule".into(),
                found: format!("fact `{f}`"),
            },
        });
    }
    Ok(file.program)
}

/// Parse a source expected to contain only ground facts (a database file).
pub fn parse_facts(src: &str) -> Result<Vec<Fact>, ParseError> {
    let file = parse_source(src)?;
    if let Some(r) = file.program.rules.first() {
        return Err(ParseError {
            span: r.span,
            kind: ParseErrorKind::Expected {
                expected: "a fact".into(),
                found: format!("rule `{r}`"),
            },
        });
    }
    Ok(file.facts)
}

/// Parse a single rule, e.g. `"p(X), !q(X) -> +r(X)."`.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let program = parse_program(src)?;
    match <[Rule; 1]>::try_from(program.rules) {
        Ok([rule]) => Ok(rule),
        Err(rules) => Err(ParseError {
            span: rules.first().map(|r| r.span).unwrap_or_default(),
            kind: ParseErrorKind::Expected {
                expected: "exactly one rule".into(),
                found: format!("{} rules", rules.len()),
            },
        }),
    }
}

/// Parse a transaction-update file: a sequence of signed ground atoms such
/// as `+q(b). -p(a, 1).` (Section 4.3's update set `U`).
pub fn parse_updates(src: &str) -> Result<Vec<(Sign, Atom)>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while *p.peek() != Token::Eof {
        let span = p.span();
        let sign = match p.bump() {
            Token::Plus => Sign::Insert,
            Token::Minus => Sign::Delete,
            other => {
                return Err(ParseError {
                    span,
                    kind: ParseErrorKind::Expected {
                        expected: "`+` or `-` starting an update".into(),
                        found: other.describe(),
                    },
                })
            }
        };
        let atom = p.atom()?;
        if let Some(v) = atom.vars().next() {
            return Err(ParseError {
                span,
                kind: ParseErrorKind::NonGroundFact { var: v.to_string() },
            });
        }
        p.expect(Token::Dot, "`.`")?;
        out.push((sign, atom));
    }
    Ok(out)
}

/// Parse a conjunctive query: a rule body on its own, with an optional
/// `?-` prefix and optional trailing dot — e.g.
/// `"?- emp(X), !active(X), S > 100."` or `"emp(X), payroll(X, S)"`.
///
/// The same safety discipline as rule bodies applies (checked by the
/// engine): negated literals and guards must have their variables bound by
/// binding literals.
pub fn parse_query(src: &str) -> Result<Vec<BodyLiteral>, ParseError> {
    // The optional `?-` prefix is not part of the token alphabet (`?`
    // would be a lex error), so strip it textually before tokenizing.
    let src = src.trim_start().strip_prefix("?-").unwrap_or(src);
    let mut p = Parser::new(src)?;
    let mut body = vec![p.literal()?];
    while *p.peek() == Token::Comma {
        p.bump();
        body.push(p.literal()?);
    }
    if *p.peek() == Token::Dot {
        p.bump();
    }
    p.expect_eof()?;
    Ok(body)
}

/// Parse a single ground atom, e.g. `"p(a, 3)"` (no trailing dot).
pub fn parse_ground_atom(src: &str) -> Result<Atom, ParseError> {
    let mut p = Parser::new(src)?;
    let atom = p.atom()?;
    p.expect_eof()?;
    if let Some(v) = atom.vars().next() {
        return Err(ParseError {
            span: Span::synthetic(),
            kind: ParseErrorKind::NonGroundFact { var: v.to_string() },
        });
    }
    Ok(atom)
}

use crate::ast::Span;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// Parsed `@...` annotations awaiting attachment to a rule.
#[derive(Default)]
struct Annotations {
    priority: Option<i32>,
    name: Option<String>,
}

impl Annotations {
    fn is_empty(&self) -> bool {
        self.priority.is_none() && self.name.is_none()
    }
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_expected(&self, expected: &str) -> ParseError {
        ParseError {
            span: self.span(),
            kind: ParseErrorKind::Expected {
                expected: expected.into(),
                found: self.peek().describe(),
            },
        }
    }

    fn expect(&mut self, tok: Token, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err_expected(what))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.err_expected("end of input"))
        }
    }

    fn source(&mut self) -> Result<SourceFile, ParseError> {
        let mut file = SourceFile::default();
        let mut names: HashSet<String> = HashSet::new();
        while *self.peek() != Token::Eof {
            self.item(&mut file, &mut names)?;
        }
        Ok(file)
    }

    fn item(
        &mut self,
        file: &mut SourceFile,
        names: &mut HashSet<String>,
    ) -> Result<(), ParseError> {
        let ann_span = self.span();
        let ann = self.annotations()?;

        // Optional rule label: IDENT ':' (lookahead distinguishes it from an
        // atom, which is IDENT followed by '(', ',', '.', or '->').
        let mut label: Option<String> = None;
        let label_span = self.span();
        if matches!(self.peek(), Token::Ident(_)) && *self.peek2() == Token::Colon {
            let Token::Ident(name) = self.bump() else {
                unreachable!()
            };
            self.bump(); // ':'
            label = Some(name);
        }

        let clause_span = self.span();
        if *self.peek() == Token::Arrow
            || *self.peek() == Token::Plus
            || *self.peek() == Token::Minus
            || *self.peek() == Token::Bang
            || matches!(self.peek(), Token::Var(_) | Token::Int(_) | Token::Str(_))
            || (matches!(self.peek(), Token::Ident(_)) && Self::comp_op_of(self.peek2()).is_some())
            || self.at_not_keyword()
        {
            // Definitely a rule (body-less, or starting with a marked /
            // negated / comparison literal).
            let rule = self.rule_tail(Vec::new(), ann, label, clause_span, names, label_span)?;
            file.program.rules.push(rule);
            return Ok(());
        }

        // Starts with an atom: fact or rule, disambiguated by what follows.
        let atom = self.atom()?;
        if *self.peek() == Token::Dot {
            self.bump();
            if label.is_some() {
                return Err(ParseError {
                    span: label_span,
                    kind: ParseErrorKind::Expected {
                        expected: "a rule after a label".into(),
                        found: format!("fact `{atom}.`"),
                    },
                });
            }
            if !ann.is_empty() {
                return Err(ParseError {
                    span: ann_span,
                    kind: ParseErrorKind::Expected {
                        expected: "a rule after annotations".into(),
                        found: format!("fact `{atom}.`"),
                    },
                });
            }
            if let Some(v) = atom.vars().next() {
                return Err(ParseError {
                    span: clause_span,
                    kind: ParseErrorKind::NonGroundFact { var: v.to_string() },
                });
            }
            file.facts.push(Fact {
                atom,
                span: clause_span,
            });
            return Ok(());
        }
        let rule = self.rule_tail(
            vec![BodyLiteral::Pos(atom)],
            ann,
            label,
            clause_span,
            names,
            label_span,
        )?;
        file.program.rules.push(rule);
        Ok(())
    }

    /// True if the current token is the `not` keyword introducing a negated
    /// literal (i.e. followed by an identifier).
    fn at_not_keyword(&self) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == "not")
            && matches!(self.peek2(), Token::Ident(_))
    }

    fn annotations(&mut self) -> Result<Annotations, ParseError> {
        let mut ann = Annotations::default();
        while *self.peek() == Token::At {
            self.bump();
            let span = self.span();
            let Token::Ident(key) = self.bump() else {
                return Err(ParseError {
                    span,
                    kind: ParseErrorKind::Expected {
                        expected: "annotation name".into(),
                        found: self.tokens[self.pos - 1].token.describe(),
                    },
                });
            };
            self.expect(Token::LParen, "`(`")?;
            match key.as_str() {
                "priority" => {
                    let arg_span = self.span();
                    match self.bump() {
                        Token::Int(i) => {
                            ann.priority = Some(i32::try_from(i).map_err(|_| ParseError {
                                span: arg_span,
                                kind: ParseErrorKind::BadAnnotationArg {
                                    annotation: key.clone(),
                                    detail: format!("priority {i} out of i32 range"),
                                },
                            })?)
                        }
                        other => {
                            return Err(ParseError {
                                span: arg_span,
                                kind: ParseErrorKind::BadAnnotationArg {
                                    annotation: key,
                                    detail: format!("expected integer, found {}", other.describe()),
                                },
                            })
                        }
                    }
                }
                "name" => {
                    let arg_span = self.span();
                    match self.bump() {
                        Token::Ident(n) => ann.name = Some(n),
                        other => {
                            return Err(ParseError {
                                span: arg_span,
                                kind: ParseErrorKind::BadAnnotationArg {
                                    annotation: key,
                                    detail: format!(
                                        "expected identifier, found {}",
                                        other.describe()
                                    ),
                                },
                            })
                        }
                    }
                }
                other => {
                    return Err(ParseError {
                        span,
                        kind: ParseErrorKind::UnknownAnnotation(other.to_string()),
                    })
                }
            }
            self.expect(Token::RParen, "`)`")?;
        }
        Ok(ann)
    }

    /// Parse the remainder of a rule whose first body literals (possibly
    /// none) have already been consumed.
    #[allow(clippy::too_many_arguments)]
    fn rule_tail(
        &mut self,
        mut body: Vec<BodyLiteral>,
        ann: Annotations,
        label: Option<String>,
        span: Span,
        names: &mut HashSet<String>,
        label_span: Span,
    ) -> Result<Rule, ParseError> {
        if !body.is_empty() {
            while *self.peek() == Token::Comma {
                self.bump();
                body.push(self.literal()?);
            }
        } else if *self.peek() != Token::Arrow {
            body.push(self.literal()?);
            while *self.peek() == Token::Comma {
                self.bump();
                body.push(self.literal()?);
            }
        }
        self.expect(Token::Arrow, "`->`")?;
        let sign = match self.bump() {
            Token::Plus => Sign::Insert,
            Token::Minus => Sign::Delete,
            _ => {
                return Err(ParseError {
                    span: self.tokens[self.pos - 1].span,
                    kind: ParseErrorKind::Expected {
                        expected: "`+` or `-` before the head atom".into(),
                        found: self.tokens[self.pos - 1].token.describe(),
                    },
                })
            }
        };
        let head_atom = self.atom()?;
        self.expect(Token::Dot, "`.`")?;
        let name = label.or(ann.name);
        if let Some(n) = &name {
            if !names.insert(n.clone()) {
                return Err(ParseError {
                    span: label_span,
                    kind: ParseErrorKind::DuplicateRuleName(n.clone()),
                });
            }
        }
        Ok(Rule {
            name,
            priority: ann.priority.unwrap_or(0),
            body,
            head: Head {
                sign,
                atom: head_atom,
            },
            span,
        })
    }

    fn comp_op_of(token: &Token) -> Option<CompOp> {
        match token {
            Token::Eq => Some(CompOp::Eq),
            Token::Ne => Some(CompOp::Ne),
            Token::Lt => Some(CompOp::Lt),
            Token::Le => Some(CompOp::Le),
            Token::Gt => Some(CompOp::Gt),
            Token::Ge => Some(CompOp::Ge),
            _ => None,
        }
    }

    fn comparison(&mut self) -> Result<BodyLiteral, ParseError> {
        let lhs = self.term()?;
        let span = self.span();
        let tok = self.bump();
        let Some(op) = Self::comp_op_of(&tok) else {
            return Err(ParseError {
                span,
                kind: ParseErrorKind::Expected {
                    expected: "a comparison operator".into(),
                    found: tok.describe(),
                },
            });
        };
        let rhs = self.term()?;
        Ok(BodyLiteral::Compare(op, lhs, rhs))
    }

    fn literal(&mut self) -> Result<BodyLiteral, ParseError> {
        match self.peek() {
            Token::Bang => {
                self.bump();
                Ok(BodyLiteral::Neg(self.atom()?))
            }
            Token::Ident(s) if s == "not" && matches!(self.peek2(), Token::Ident(_)) => {
                self.bump();
                Ok(BodyLiteral::Neg(self.atom()?))
            }
            Token::Plus => {
                self.bump();
                Ok(BodyLiteral::Event(Sign::Insert, self.atom()?))
            }
            Token::Minus => {
                self.bump();
                Ok(BodyLiteral::Event(Sign::Delete, self.atom()?))
            }
            // A variable, integer, or string can only start a comparison
            // guard; an identifier starts one iff a comparison operator
            // follows (e.g. `a != X`).
            Token::Var(_) | Token::Int(_) | Token::Str(_) => self.comparison(),
            Token::Ident(_) if Self::comp_op_of(self.peek2()).is_some() => self.comparison(),
            Token::Ident(_) => Ok(BodyLiteral::Pos(self.atom()?)),
            _ => Err(self.err_expected("a body literal")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let span = self.span();
        let Token::Ident(pred) = self.bump() else {
            return Err(ParseError {
                span,
                kind: ParseErrorKind::Expected {
                    expected: "a predicate symbol".into(),
                    found: self.tokens[self.pos - 1].token.describe(),
                },
            });
        };
        let mut args = Vec::new();
        if *self.peek() == Token::LParen {
            self.bump();
            args.push(self.term()?);
            while *self.peek() == Token::Comma {
                self.bump();
                args.push(self.term()?);
            }
            self.expect(Token::RParen, "`)` or `,`")?;
        }
        Ok(Atom { pred, args })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let span = self.span();
        match self.bump() {
            Token::Var(v) => Ok(Term::Var(v)),
            Token::Ident(s) => Ok(Term::Const(Const::Sym(s))),
            Token::Str(s) => Ok(Term::Const(Const::Sym(s))),
            Token::Int(i) => Ok(Term::Const(Const::Int(i))),
            other => Err(ParseError {
                span,
                kind: ParseErrorKind::Expected {
                    expected: "a term (variable, symbol, or integer)".into(),
                    found: other.describe(),
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_rule() {
        let r =
            parse_rule("emp(X), !active(X), payroll(X, Salary) -> -payroll(X, Salary).").unwrap();
        assert_eq!(r.body.len(), 3);
        assert_eq!(r.head.sign, Sign::Delete);
        assert_eq!(r.head.atom.pred, "payroll");
        assert!(matches!(&r.body[1], BodyLiteral::Neg(a) if a.pred == "active"));
    }

    #[test]
    fn parses_facts_and_rules_interleaved() {
        let f = parse_source("p(a). p(X) -> +q(X). p(b).").unwrap();
        assert_eq!(f.facts.len(), 2);
        assert_eq!(f.program.rules.len(), 1);
    }

    #[test]
    fn parses_propositional_program() {
        let p = parse_program("p -> +q. p -> -a. q -> +a.").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.rules[1].head.sign, Sign::Delete);
        assert_eq!(p.rules[2].body.len(), 1);
    }

    #[test]
    fn parses_labels_and_annotations() {
        let p = parse_program("@priority(5) r1: p(X) -> +q(X). @name(r2) q(X) -> -p(X).").unwrap();
        assert_eq!(p.rules[0].name.as_deref(), Some("r1"));
        assert_eq!(p.rules[0].priority, 5);
        assert_eq!(p.rules[1].name.as_deref(), Some("r2"));
    }

    #[test]
    fn duplicate_rule_names_rejected() {
        let e = parse_program("r1: p -> +q. r1: p -> +r.").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateRuleName("r1".into()));
    }

    #[test]
    fn parses_event_literals() {
        let r = parse_rule("+r(X), -s(Y), q(X, Y) -> -t(X).").unwrap();
        assert!(matches!(&r.body[0], BodyLiteral::Event(Sign::Insert, _)));
        assert!(matches!(&r.body[1], BodyLiteral::Event(Sign::Delete, _)));
    }

    #[test]
    fn parses_bodyless_update_rule() {
        let r = parse_rule("-> +q(b).").unwrap();
        assert!(r.body.is_empty());
        assert_eq!(r.head.sign, Sign::Insert);
    }

    #[test]
    fn not_keyword_is_negation() {
        let r = parse_rule("not active(X), emp(X) -> -payroll(X).").unwrap();
        assert!(matches!(&r.body[0], BodyLiteral::Neg(a) if a.pred == "active"));
    }

    #[test]
    fn non_ground_fact_rejected() {
        let e = parse_source("p(X).").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::NonGroundFact { var: "X".into() });
    }

    #[test]
    fn facts_rejected_by_parse_program() {
        assert!(parse_program("p(a).").is_err());
    }

    #[test]
    fn rules_rejected_by_parse_facts() {
        assert!(parse_facts("p -> +q.").is_err());
    }

    #[test]
    fn missing_head_sign_is_an_error() {
        let e = parse_rule("p(X) -> q(X).").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Expected { .. }));
    }

    #[test]
    fn label_on_fact_is_an_error() {
        assert!(parse_source("r1: p(a).").is_err());
    }

    #[test]
    fn annotation_on_fact_is_an_error() {
        assert!(parse_source("@priority(1) p(a).").is_err());
    }

    #[test]
    fn integer_and_string_terms() {
        let f = parse_source(r#"p(1, -2, "hello world")."#).unwrap();
        let atom = &f.facts[0].atom;
        assert_eq!(atom.args[0], Term::int(1));
        assert_eq!(atom.args[1], Term::int(-2));
        assert_eq!(atom.args[2], Term::sym("hello world"));
    }

    #[test]
    fn parse_ground_atom_helper() {
        let a = parse_ground_atom("p(a, 3)").unwrap();
        assert_eq!(a.pred, "p");
        assert!(parse_ground_atom("p(X)").is_err());
        assert!(parse_ground_atom("p(a) extra").is_err());
    }

    #[test]
    fn display_parse_roundtrip_for_rules() {
        let srcs = [
            "p(X), !q(X) -> +r(X).",
            "-> +q(b).",
            "@priority(3) r9: +e(X, Y), !f(X) -> -g(Y).",
            "emp(X), not active(X) -> -payroll(X).",
        ];
        for s in srcs {
            let r1 = parse_rule(s).unwrap();
            let printed = r1.to_string();
            let r2 = parse_rule(&printed).unwrap();
            // Spans differ; compare everything else.
            let norm = |mut r: Rule| {
                r.span = Span::synthetic();
                r
            };
            assert_eq!(norm(r1), norm(r2), "roundtrip failed for {s}");
        }
    }

    #[test]
    fn parses_comparison_guards() {
        let r = parse_rule("stock(I, Q), Q < 10 -> +low(I).").unwrap();
        assert_eq!(r.body.len(), 2);
        assert!(matches!(
            &r.body[1],
            BodyLiteral::Compare(CompOp::Lt, Term::Var(v), Term::Const(Const::Int(10))) if v == "Q"
        ));
        // All six operators, in both var/const orders.
        for (src, op) in [
            ("p(X), X = a -> +q(X).", CompOp::Eq),
            ("p(X), X != 3 -> +q(X).", CompOp::Ne),
            ("p(X), 0 <= X -> +q(X).", CompOp::Le),
            ("p(X), X > 7 -> +q(X).", CompOp::Gt),
            ("p(X), X >= 7 -> +q(X).", CompOp::Ge),
            ("p(X, Y), X < Y -> +q(X).", CompOp::Lt),
        ] {
            let r = parse_rule(src).unwrap();
            assert!(
                matches!(&r.body[1], BodyLiteral::Compare(o, _, _) if *o == op),
                "{src}"
            );
        }
    }

    #[test]
    fn guard_display_roundtrips() {
        for src in [
            "stock(I, Q), Q < 10 -> +low(I).",
            "p(X, Y), X != Y -> +distinct(X, Y).",
            "p(X), X = a -> -p(X).",
        ] {
            let r1 = parse_rule(src).unwrap();
            let r2 = parse_rule(&r1.to_string()).unwrap();
            let strip = |mut r: Rule| {
                r.span = Span::synthetic();
                r
            };
            assert_eq!(strip(r1), strip(r2), "{src}");
        }
    }

    #[test]
    fn constant_led_comparison_vs_atom() {
        // `a != X` is a guard (ident followed by an operator); `a(X)` is an
        // atom.
        let r = parse_rule("p(X), a != X -> +q(X).").unwrap();
        assert!(matches!(&r.body[1], BodyLiteral::Compare(CompOp::Ne, _, _)));
        let r = parse_rule("a(X) -> +q(X).").unwrap();
        assert!(matches!(&r.body[0], BodyLiteral::Pos(_)));
    }

    #[test]
    fn parse_query_accepts_bodies() {
        let q = parse_query("?- emp(X), !active(X), S > 100.").unwrap();
        assert_eq!(q.len(), 3);
        assert!(matches!(&q[0], BodyLiteral::Pos(_)));
        assert!(matches!(&q[1], BodyLiteral::Neg(_)));
        assert!(matches!(&q[2], BodyLiteral::Compare(CompOp::Gt, _, _)));
        // Prefix and dot are both optional.
        assert_eq!(parse_query("emp(X)").unwrap().len(), 1);
        assert_eq!(parse_query("emp(X).").unwrap().len(), 1);
        assert!(parse_query("").is_err());
        assert!(parse_query("emp(X) -> +q(X).").is_err());
    }

    #[test]
    fn parse_updates_accepts_signed_ground_atoms() {
        let us = parse_updates("+q(b). -p(a, 1).").unwrap();
        assert_eq!(us.len(), 2);
        assert_eq!(us[0].0, Sign::Insert);
        assert_eq!(us[0].1.pred, "q");
        assert_eq!(us[1].0, Sign::Delete);
    }

    #[test]
    fn parse_updates_rejects_unsigned_and_nonground() {
        assert!(parse_updates("q(b).").is_err());
        assert!(parse_updates("+q(X).").is_err());
        assert!(parse_updates("+q(b)").is_err());
    }

    #[test]
    fn error_positions_are_meaningful() {
        let e = parse_program("p(X) ->\n q(X).").unwrap_err();
        assert_eq!(e.span.line, 2);
    }
}
