//! # park-syntax
//!
//! The rule language of the PARK active-rule system (*The PARK Semantics for
//! Active Rules*, Gottlob, Moerkotte, Subrahmanian; EDBT 1996).
//!
//! This crate defines the abstract syntax of condition–action and full
//! event–condition–action rules (Section 2 and Section 4.3 of the paper), a
//! concrete textual syntax with a lexer and parser, a pretty-printer
//! (the `Display` impls), and the paper's safety conditions.
//!
//! ## Concrete syntax at a glance
//!
//! ```text
//! % The Section 2 motivating rule: drop payroll records of inactive staff.
//! r1: emp(X), !active(X), payroll(X, Salary) -> -payroll(X, Salary).
//!
//! % Event literals (Section 4.3) trigger on updates:
//! r3: +r(X) -> -s(X).
//!
//! % Facts form a database instance:
//! emp(alice). payroll(alice, 50000).
//! ```
//!
//! Parse entire files with [`parse_source`], programs with [`parse_program`],
//! databases with [`parse_facts`], and single rules with [`parse_rule`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod safety;

pub use ast::{
    Atom, BodyLiteral, CompOp, Const, Fact, Head, Program, Rule, Sign, SourceFile, Span, Term,
};
pub use error::{ParseError, ParseErrorKind, SafetyError, SafetyErrorKind};
pub use parser::{
    parse_facts, parse_ground_atom, parse_program, parse_query, parse_rule, parse_source,
    parse_updates,
};
pub use pragma::{allow_pragmas, AllowPragma, SuppressionIndex};
pub use safety::{check_program, check_rule};
