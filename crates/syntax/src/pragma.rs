//! Lint-suppression pragmas.
//!
//! The lexer discards `%` comments wholesale, so pragmas live in the raw
//! source text rather than the token stream: a comment line of the form
//!
//! ```text
//! %# allow(PARK001)
//! %# allow(PARK002, PARK003)
//! ```
//!
//! suppresses the listed lint codes on the pragma's own line (for trailing
//! use after a rule) and on the next line that holds program text — the
//! next non-blank line that is not itself a comment. Anything after `%` that
//! does not match the `%# allow(...)` shape is an ordinary comment and is
//! ignored here.

use std::collections::HashMap;

/// One parsed `%# allow(...)` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowPragma {
    /// 1-based source line the pragma itself is on.
    pub line: u32,
    /// The lint codes it names, in source order.
    pub codes: Vec<String>,
    /// The 1-based lines it covers: its own line, plus the next line of
    /// program text if one exists.
    pub covers: Vec<u32>,
}

fn parse_allow(line: &str) -> Option<Vec<String>> {
    let rest = line.trim_start().strip_prefix("%#")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    let codes: Vec<String> = inner
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        None
    } else {
        Some(codes)
    }
}

fn is_comment_or_blank(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with('%') || t.starts_with("//")
}

/// Scan raw source text for `%# allow(...)` pragmas and compute the lines
/// each one covers.
pub fn allow_pragmas(src: &str) -> Vec<AllowPragma> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(codes) = parse_allow(line) else {
            continue;
        };
        let own = (i + 1) as u32;
        let mut covers = vec![own];
        // The next line of program text, skipping blanks and comments (so
        // pragma blocks can stack above one rule).
        if let Some(next) = lines
            .iter()
            .skip(i + 1)
            .position(|l| !is_comment_or_blank(l))
        {
            covers.push((i + 1 + next + 1) as u32);
        }
        out.push(AllowPragma {
            line: own,
            codes,
            covers,
        });
    }
    out
}

/// A line → allowed-codes index for quick suppression checks.
#[derive(Debug, Clone, Default)]
pub struct SuppressionIndex {
    by_line: HashMap<u32, Vec<String>>,
}

impl SuppressionIndex {
    /// Build the index for one source text.
    pub fn of(src: &str) -> Self {
        let mut by_line: HashMap<u32, Vec<String>> = HashMap::new();
        for pragma in allow_pragmas(src) {
            for line in &pragma.covers {
                by_line
                    .entry(*line)
                    .or_default()
                    .extend(pragma.codes.iter().cloned());
            }
        }
        SuppressionIndex { by_line }
    }

    /// Is `code` suppressed on 1-based `line`?
    pub fn allows(&self, line: u32, code: &str) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|codes| codes.iter().any(|c| c == code))
    }

    /// True when no pragma was found at all.
    pub fn is_empty(&self) -> bool {
        self.by_line.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_covers_next_program_line() {
        let src = "%# allow(PARK001)\np(X) -> +q(X).\np(X) -> -q(X).\n";
        let pragmas = allow_pragmas(src);
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].codes, vec!["PARK001"]);
        assert_eq!(pragmas[0].covers, vec![1, 2]);
        let idx = SuppressionIndex::of(src);
        assert!(idx.allows(2, "PARK001"));
        assert!(!idx.allows(3, "PARK001"));
        assert!(!idx.allows(2, "PARK002"));
    }

    #[test]
    fn pragma_skips_blank_and_comment_lines() {
        let src = "%# allow(PARK003)\n% a comment\n\n// another\nrule: +e -> +q.\n";
        let pragmas = allow_pragmas(src);
        assert_eq!(pragmas[0].covers, vec![1, 5]);
    }

    #[test]
    fn multiple_codes_and_stacked_pragmas() {
        let src = "%# allow(PARK001, PARK002)\n%# allow(PARK003)\np -> +q.\n";
        let idx = SuppressionIndex::of(src);
        for code in ["PARK001", "PARK002", "PARK003"] {
            assert!(idx.allows(3, code), "{code} must cover line 3");
        }
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        // Spans point at the rule's line, so a pragma on the same line
        // suppresses it; a rule on the line *after* a trailing construct
        // still gets covered as the "next program line".
        let src = "p -> +q. %# allow(PARK001)\n";
        // The pragma must be the whole comment — mid-line pragmas are not
        // detected (the line does not start with %#).
        assert!(allow_pragmas(src).is_empty());
        let src = "   %# allow(PARK005)\nq -> +r.\n";
        let idx = SuppressionIndex::of(src);
        assert!(idx.allows(2, "PARK005"));
    }

    #[test]
    fn malformed_pragmas_are_plain_comments() {
        for src in [
            "%# allow()\np.\n",
            "%# allow PARK001\np.\n",
            "% allow(PARK001)\np.\n",
            "%#allowance(PARK001)\np.\n",
        ] {
            assert!(allow_pragmas(src).is_empty(), "{src:?}");
        }
        // `%#allow(...)` without the space is accepted.
        assert_eq!(allow_pragmas("%#allow(PARK001)\n").len(), 1);
    }
}
