//! Safety checking for active rules (Section 2 of the paper).
//!
//! A rule is *safe* iff
//!
//! 1. every variable occurring in the head also occurs in the body, and
//! 2. every variable occurring in a negated body literal also occurs in some
//!    *binding* body literal (a positive condition or an event literal —
//!    both are matched extensionally and therefore ground their variables).
//!
//! In addition, this module checks that each predicate is used with a single
//! arity across a program (and between a program and a database), which the
//! paper assumes implicitly by working over a fixed Herbrand base.

use crate::ast::{BodyLiteral, Program, Rule};
use crate::error::{SafetyError, SafetyErrorKind};
use std::collections::{HashMap, HashSet};

/// Check a single rule against the paper's two safety conditions.
pub fn check_rule(rule: &Rule) -> Result<(), SafetyError> {
    let binding_vars: HashSet<&str> = rule
        .body
        .iter()
        .filter(|l| l.is_binding())
        .flat_map(|l| l.vars())
        .collect();

    // Condition 2: negated-literal (and guard) variables must be bound.
    for lit in &rule.body {
        if !lit.is_binding() {
            for v in lit.vars() {
                if !binding_vars.contains(v) {
                    return Err(SafetyError {
                        rule: rule.to_string(),
                        span: rule.span,
                        kind: match lit {
                            BodyLiteral::Compare(..) => {
                                SafetyErrorKind::UnboundGuardVar(v.to_string())
                            }
                            _ => SafetyErrorKind::UnboundNegatedVar(v.to_string()),
                        },
                    });
                }
            }
        }
    }

    // Condition 1: head variables must occur in the body. (Only binding
    // literals can actually ground a variable, and condition 2 already
    // forces negated-literal variables to be bound, so checking against
    // binding variables is equivalent and gives better errors.)
    for v in rule.head.atom.vars() {
        if !binding_vars.contains(v) {
            return Err(SafetyError {
                rule: rule.to_string(),
                span: rule.span,
                kind: SafetyErrorKind::UnboundHeadVar(v.to_string()),
            });
        }
    }
    Ok(())
}

/// Check every rule of a program, plus arity consistency across rules.
///
/// Returns all violations rather than stopping at the first, so a user can
/// fix a file in one pass.
pub fn check_program(program: &Program) -> Result<(), Vec<SafetyError>> {
    let mut errors = Vec::new();
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for rule in &program.rules {
        if let Err(e) = check_rule(rule) {
            errors.push(e);
        }
        let atoms = rule
            .body
            .iter()
            .filter_map(|l| l.atom())
            .chain(std::iter::once(&rule.head.atom));
        for atom in atoms {
            match arities.entry(&atom.pred) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(atom.arity());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != atom.arity() {
                        errors.push(SafetyError {
                            rule: rule.to_string(),
                            span: rule.span,
                            kind: SafetyErrorKind::ArityMismatch {
                                pred: atom.pred.clone(),
                                first: *e.get(),
                                second: atom.arity(),
                            },
                        });
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};

    #[test]
    fn paper_example_rule_is_safe() {
        let r = parse_rule("emp(X), !active(X), payroll(X, S) -> -payroll(X, S).").unwrap();
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn unbound_head_var_rejected() {
        let r = parse_rule("p(X) -> +q(X, Y).").unwrap();
        let e = check_rule(&r).unwrap_err();
        assert_eq!(e.kind, SafetyErrorKind::UnboundHeadVar("Y".into()));
    }

    #[test]
    fn head_var_bound_only_by_negation_rejected() {
        // Y occurs in the body, but only in a negated literal, which cannot
        // ground it; the rule is unsafe under condition 2 (checked first).
        let r = parse_rule("p(X), !q(Y) -> +r(Y).").unwrap();
        let e = check_rule(&r).unwrap_err();
        assert_eq!(e.kind, SafetyErrorKind::UnboundNegatedVar("Y".into()));
    }

    #[test]
    fn negated_var_bound_by_event_literal_is_safe() {
        let r = parse_rule("+r(X), !s(X) -> -t(X).").unwrap();
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn negated_var_unbound_rejected() {
        let r = parse_rule("p(X), !q(X, Z) -> +r(X).").unwrap();
        let e = check_rule(&r).unwrap_err();
        assert_eq!(e.kind, SafetyErrorKind::UnboundNegatedVar("Z".into()));
    }

    #[test]
    fn ground_rule_is_safe() {
        let r = parse_rule("p -> +q.").unwrap();
        assert!(check_rule(&r).is_ok());
        let r = parse_rule("-> +q(b).").unwrap();
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn bodyless_rule_with_head_var_rejected() {
        let r = parse_rule("-> +q(X).").unwrap();
        assert!(check_rule(&r).is_err());
    }

    #[test]
    fn guard_vars_must_be_bound() {
        let r = parse_rule("p(X), Y < 3 -> +q(X).").unwrap();
        let e = check_rule(&r).unwrap_err();
        assert_eq!(e.kind, SafetyErrorKind::UnboundGuardVar("Y".into()));
        // Bound guard vars are fine, in either source order.
        assert!(check_rule(&parse_rule("p(X), X < 3 -> +q(X).").unwrap()).is_ok());
        assert!(check_rule(&parse_rule("X < 3, p(X) -> +q(X).").unwrap()).is_ok());
        // Constants-only guards are trivially safe.
        assert!(check_rule(&parse_rule("p(X), 1 < 2 -> +q(X).").unwrap()).is_ok());
        // A negated literal cannot bind a guard variable.
        let r = parse_rule("p(X), Y != X, !q(Y) -> +r(X).").unwrap();
        assert!(check_rule(&r).is_err());
    }

    #[test]
    fn arity_mismatch_detected_across_rules() {
        let p = parse_program("p(X) -> +q(X). q(X, Y) -> +r(X, Y). p(X) -> +r(X, X).").unwrap();
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(&e.kind, SafetyErrorKind::ArityMismatch { pred, .. } if pred == "q")
        ));
    }

    #[test]
    fn check_program_collects_all_errors() {
        let p = parse_program("p(X) -> +q(X, Y). a(X) -> +b(X, Z).").unwrap();
        let errs = check_program(&p).unwrap_err();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn consistent_program_passes() {
        let p = parse_program(
            "p(X), p(Y) -> +q(X, Y). q(X, X) -> -q(X, X). q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
        )
        .unwrap();
        assert!(check_program(&p).is_ok());
    }
}
