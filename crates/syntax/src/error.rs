//! Error types for lexing, parsing, and safety checking.

use crate::ast::Span;
use std::fmt;

/// An error produced while lexing or parsing a `.park` source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub span: Span,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character that cannot start any token.
    UnexpectedChar(char),
    /// A string literal with no closing quote.
    UnterminatedString,
    /// An integer literal that overflows `i64`.
    IntegerOverflow(String),
    /// The parser expected one thing and found another.
    Expected {
        /// What the grammar required at this point.
        expected: String,
        /// The token actually encountered.
        found: String,
    },
    /// A fact (atom followed by `.`) contained a variable.
    NonGroundFact {
        /// The offending variable name.
        var: String,
    },
    /// An unknown `@...` annotation.
    UnknownAnnotation(String),
    /// A malformed annotation argument.
    BadAnnotationArg {
        /// The annotation name.
        annotation: String,
        /// Why the argument was rejected.
        detail: String,
    },
    /// A rule label was declared twice in one file.
    DuplicateRuleName(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.kind)
    }
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::IntegerOverflow(s) => {
                write!(f, "integer literal `{s}` does not fit in i64")
            }
            ParseErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::NonGroundFact { var } => {
                write!(f, "facts must be ground, but variable `{var}` occurs")
            }
            ParseErrorKind::UnknownAnnotation(a) => write!(f, "unknown annotation `@{a}`"),
            ParseErrorKind::BadAnnotationArg { annotation, detail } => {
                write!(f, "bad argument for `@{annotation}`: {detail}")
            }
            ParseErrorKind::DuplicateRuleName(n) => {
                write!(f, "rule name `{n}` is declared more than once")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Render a compiler-style diagnostic pointing into `src`:
///
/// ```text
/// error: expected `.`, found `->`
///   |
/// 3 | p(X) -> q(X).
///   |      ^
/// ```
pub fn render_diagnostic(message: &str, span: Span, src: &str) -> String {
    let mut out = format!("error: {message}\n");
    if span.is_synthetic() {
        return out;
    }
    let Some(line_text) = src.lines().nth(span.line as usize - 1) else {
        return out;
    };
    let line_no = span.line.to_string();
    let pad = " ".repeat(line_no.len());
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{line_no} | {line_text}\n"));
    let caret_pad: String = line_text
        .chars()
        .take(span.col.saturating_sub(1) as usize)
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    out.push_str(&format!("{pad} | {caret_pad}^\n"));
    out
}

impl ParseError {
    /// Caret diagnostic against the source this error came from.
    pub fn render(&self, src: &str) -> String {
        // Strip the leading location from Display (the caret shows it).
        let msg = self.to_string();
        let msg = msg.split_once(": ").map(|(_, m)| m).unwrap_or(&msg);
        render_diagnostic(msg, self.span, src)
    }
}

/// A violation of the paper's safety conditions (Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyError {
    /// The offending rule, rendered.
    pub rule: String,
    /// Rule source location.
    pub span: Span,
    /// What was violated.
    pub kind: SafetyErrorKind,
}

/// The category of a [`SafetyError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyErrorKind {
    /// Safety condition 1: a head variable does not occur in the body.
    UnboundHeadVar(String),
    /// Safety condition 2: a variable of a negated body literal does not
    /// occur in any binding (positive or event) body literal.
    UnboundNegatedVar(String),
    /// Extension safety: a variable of a comparison guard does not occur
    /// in any binding body literal.
    UnboundGuardVar(String),
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// The predicate symbol.
        pred: String,
        /// The arity seen first.
        first: usize,
        /// The conflicting arity seen later.
        second: usize,
    },
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: in rule `{}`: {}", self.span, self.rule, self.kind)
    }
}

impl fmt::Display for SafetyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyErrorKind::UnboundHeadVar(v) => write!(
                f,
                "head variable `{v}` does not occur in the rule body (safety condition 1)"
            ),
            SafetyErrorKind::UnboundNegatedVar(v) => write!(
                f,
                "variable `{v}` of a negated literal is not bound by a positive \
                 or event literal (safety condition 2)"
            ),
            SafetyErrorKind::UnboundGuardVar(v) => write!(
                f,
                "variable `{v}` of a comparison guard is not bound by a positive \
                 or event literal"
            ),
            SafetyErrorKind::ArityMismatch {
                pred,
                first,
                second,
            } => write!(
                f,
                "predicate `{pred}` used with arity {second} but previously with arity {first}"
            ),
        }
    }
}

impl std::error::Error for SafetyError {}

impl SafetyError {
    /// Caret diagnostic against the source this error came from.
    pub fn render(&self, src: &str) -> String {
        render_diagnostic(&self.to_string(), self.span, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_location_and_cause() {
        let e = ParseError {
            span: Span { line: 3, col: 7 },
            kind: ParseErrorKind::Expected {
                expected: "`.`".into(),
                found: "`->`".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("3:7"), "{s}");
        assert!(s.contains("expected `.`"), "{s}");
    }

    #[test]
    fn render_points_at_the_offending_column() {
        let src = "p(a).\np(X) -> q(X).\n";
        let e = crate::parser::parse_source(src).unwrap_err();
        let rendered = e.render(src);
        assert!(rendered.starts_with("error: "), "{rendered}");
        assert!(rendered.contains("2 | p(X) -> q(X)."), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.trim_end().ends_with('^'), "{rendered}");
    }

    #[test]
    fn render_handles_synthetic_spans() {
        let e = ParseError {
            span: Span::synthetic(),
            kind: ParseErrorKind::UnterminatedString,
        };
        let rendered = e.render("whatever");
        assert!(rendered.starts_with("error: "));
        assert!(!rendered.contains('^'));
    }

    #[test]
    fn safety_error_display_names_rule_and_var() {
        let e = SafetyError {
            rule: "p(X) -> +q(Y).".into(),
            span: Span::synthetic(),
            kind: SafetyErrorKind::UnboundHeadVar("Y".into()),
        };
        let s = e.to_string();
        assert!(s.contains("`Y`"), "{s}");
        assert!(s.contains("safety condition 1"), "{s}");
    }
}
