//! Hand-written lexer for the `.park` rule language.
//!
//! Tokens: identifiers (lowercase-initial), variables (uppercase/underscore-
//! initial), integers, quoted strings, and the punctuation used by rules.
//! Comments run from `%` or `//` to end of line.

use crate::ast::Span;
use crate::error::{ParseError, ParseErrorKind};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Lowercase-initial identifier: predicate or constant symbol.
    Ident(String),
    /// Uppercase- or underscore-initial identifier: a variable.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A quoted string literal (a symbol constant).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `!`
    Bang,
    /// `@`
    At,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Token {
    /// A short human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Var(s) => format!("variable `{s}`"),
            Token::Int(i) => format!("integer `{i}`"),
            Token::Str(s) => format!("string {s:?}"),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::Comma => "`,`".into(),
            Token::Dot => "`.`".into(),
            Token::Arrow => "`->`".into(),
            Token::Plus => "`+`".into(),
            Token::Minus => "`-`".into(),
            Token::Bang => "`!`".into(),
            Token::At => "`@`".into(),
            Token::Colon => "`:`".into(),
            Token::Eq => "`=`".into(),
            Token::Ne => "`!=`".into(),
            Token::Lt => "`<`".into(),
            Token::Le => "`<=`".into(),
            Token::Gt => "`>`".into(),
            Token::Ge => "`>=`".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub span: Span,
}

/// Tokenize an entire source string.
///
/// The resulting vector always ends with a single [`Token::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some('%') => {
                    self.skip_line();
                    continue;
                }
                Some('/') => {
                    // Only `//` starts a comment; a lone `/` is an error.
                    let span = self.span();
                    self.bump();
                    if self.peek() == Some('/') {
                        self.skip_line();
                        continue;
                    }
                    return Err(ParseError {
                        span,
                        kind: ParseErrorKind::UnexpectedChar('/'),
                    });
                }
                _ => {}
            }
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    token: Token::Eof,
                    span,
                });
                return Ok(out);
            };
            let token = match c {
                '(' => {
                    self.bump();
                    Token::LParen
                }
                ')' => {
                    self.bump();
                    Token::RParen
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '.' => {
                    self.bump();
                    Token::Dot
                }
                '+' => {
                    self.bump();
                    Token::Plus
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Ne
                    } else {
                        Token::Bang
                    }
                }
                '=' => {
                    self.bump();
                    Token::Eq
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Le
                    } else {
                        Token::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Ge
                    } else {
                        Token::Gt
                    }
                }
                '@' => {
                    self.bump();
                    Token::At
                }
                ':' => {
                    self.bump();
                    Token::Colon
                }
                '-' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        Token::Arrow
                    } else if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        // A negative integer literal.
                        self.lex_int(span, true)?
                    } else {
                        Token::Minus
                    }
                }
                '"' => self.lex_string(span)?,
                c if c.is_ascii_digit() => self.lex_int(span, false)?,
                c if c.is_alphabetic() || c == '_' => self.lex_word(),
                other => {
                    return Err(ParseError {
                        span,
                        kind: ParseErrorKind::UnexpectedChar(other),
                    })
                }
            };
            out.push(Spanned { token, span });
        }
    }

    fn lex_word(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let first = s.chars().next().expect("word has at least one char");
        if first.is_uppercase() || first == '_' {
            Token::Var(s)
        } else {
            Token::Ident(s)
        }
    }

    fn lex_int(&mut self, span: Span, negative: bool) -> Result<Token, ParseError> {
        let mut digits = String::new();
        if negative {
            digits.push('-');
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        digits
            .parse::<i64>()
            .map(Token::Int)
            .map_err(|_| ParseError {
                span,
                kind: ParseErrorKind::IntegerOverflow(digits),
            })
    }

    fn lex_string(&mut self, span: Span) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(ParseError {
                        span,
                        kind: ParseErrorKind::UnterminatedString,
                    })
                }
                Some('"') => return Ok(Token::Str(s)),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(other) => {
                        s.push('\\');
                        s.push(other);
                    }
                    None => {
                        return Err(ParseError {
                            span,
                            kind: ParseErrorKind::UnterminatedString,
                        })
                    }
                },
                Some(c) => s.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_simple_rule() {
        assert_eq!(
            toks("p(X) -> +q(X)."),
            vec![
                Token::Ident("p".into()),
                Token::LParen,
                Token::Var("X".into()),
                Token::RParen,
                Token::Arrow,
                Token::Plus,
                Token::Ident("q".into()),
                Token::LParen,
                Token::Var("X".into()),
                Token::RParen,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn minus_vs_arrow_vs_negative_int() {
        assert_eq!(
            toks("- -> -3"),
            vec![Token::Minus, Token::Arrow, Token::Int(-3), Token::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("p. % trailing\n// whole line\nq."),
            vec![
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("q".into()),
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lone_slash_is_an_error() {
        let e = tokenize("p / q").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnexpectedChar('/'));
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            toks(r#""hi \"there\"\n""#),
            vec![Token::Str("hi \"there\"\n".into()), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_reports_start() {
        let e = tokenize("  \"abc").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnterminatedString);
        assert_eq!(e.span, Span { line: 1, col: 3 });
    }

    #[test]
    fn variables_start_upper_or_underscore() {
        assert_eq!(
            toks("X _y zed"),
            vec![
                Token::Var("X".into()),
                Token::Var("_y".into()),
                Token::Ident("zed".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("X < Y <= 3 > Z >= 0 = a != b"),
            vec![
                Token::Var("X".into()),
                Token::Lt,
                Token::Var("Y".into()),
                Token::Le,
                Token::Int(3),
                Token::Gt,
                Token::Var("Z".into()),
                Token::Ge,
                Token::Int(0),
                Token::Eq,
                Token::Ident("a".into()),
                Token::Ne,
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn bang_vs_not_equals() {
        assert_eq!(
            toks("!p X != Y"),
            vec![
                Token::Bang,
                Token::Ident("p".into()),
                Token::Var("X".into()),
                Token::Ne,
                Token::Var("Y".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = tokenize("p.\n  q.").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[2].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn integer_overflow_is_reported() {
        let e = tokenize("99999999999999999999").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::IntegerOverflow(_)));
    }

    #[test]
    fn unexpected_char() {
        let e = tokenize("p ~ q").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnexpectedChar('~'));
    }
}
