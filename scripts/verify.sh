#!/usr/bin/env sh
# Full verification: release build, the whole workspace test suite,
# formatting, and lints. This is the gate every change must pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test --workspace"
cargo test --workspace --offline --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: OK"
