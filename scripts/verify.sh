#!/usr/bin/env sh
# Full verification: release build, the whole workspace test suite,
# formatting, and lints. This is the gate every change must pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test --workspace"
cargo test --workspace --offline --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> restarts bench smoke (BENCH_restarts.json)"
cargo run -p park-bench --bin report --release --offline --quiet -- --only restarts --smoke
grep -q '"replayed_steps"' BENCH_restarts.json

echo "==> differential fuzz smoke (engine vs paper-literal oracle)"
cargo run -p park-cli --bin park --release --offline --quiet -- fuzz --seed 0 --cases 200
cargo run -p park-cli --bin park --release --offline --quiet -- \
  fuzz --seed 0 --cases 100 --bias stratified

echo "==> analyze --graph smoke (valid JSON, stable ordering, every example)"
graph_dir="${TMPDIR:-/tmp}/park-graph-$$"
mkdir -p "$graph_dir"
for prog in examples/data/*.park; do
  name="$(basename "${prog%.park}")"
  # Two runs must agree to the byte (the condensation ordering is
  # deterministic), and the dump must be a park-graph/v1 document.
  for i in 1 2; do
    cargo run -p park-cli --bin park --release --offline --quiet -- \
      analyze "$prog" --graph > "$graph_dir/$name.$i.json"
  done
  cmp "$graph_dir/$name.1.json" "$graph_dir/$name.2.json"
  grep -q '"schema": "park-graph/v1"' "$graph_dir/$name.1.json"
  grep -q '"stratum"' "$graph_dir/$name.1.json"
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    analyze "$prog" --graph --dot | grep -q '^digraph park {'
done
rm -rf "$graph_dir"

echo "==> storage smoke (threads 1 vs 4 byte-identical on the largest example)"
storage_dir="${TMPDIR:-/tmp}/park-storage-$$"
mkdir -p "$storage_dir"
for t in 1 4; do
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    run examples/data/payroll.park --db examples/data/payroll.facts \
    --updates examples/data/payroll.updates --stats --threads "$t" 2>&1 \
    | sed -e 's/elapsed=[^ ]*/elapsed=_/' -e '/^threads=/d' > "$storage_dir/t$t.out"
done
# Results, counters (including tasks=), and blocked sets must not depend on
# the thread count; only the masked wall-clock and thread line may differ.
cmp "$storage_dir/t1.out" "$storage_dir/t4.out"
rm -rf "$storage_dir"

echo "==> compiled evaluator smoke (byte-diff vs semi, threads 1 vs 4)"
compiled_dir="${TMPDIR:-/tmp}/park-compiled-$$"
mkdir -p "$compiled_dir/wl"
cargo run -p park-cli --bin park --release --offline --quiet -- \
  workload closure --n 64 --out "$compiled_dir/wl" > /dev/null
for prog in examples/data/*.park "$compiled_dir"/wl/*.park; do
  base="${prog%.park}"
  name="$(basename "$base")"
  db=""; [ -f "$base.facts" ] && db="--db $base.facts"
  updates=""; [ -f "$base.updates" ] && updates="--updates $base.updates"
  # Committed results must be byte-identical across the two evaluators.
  for eval in semi compiled; do
    # shellcheck disable=SC2086
    cargo run -p park-cli --bin park --release --offline --quiet -- \
      run "$prog" $db $updates --eval "$eval" > "$compiled_dir/$name.$eval.out"
  done
  cmp "$compiled_dir/$name.semi.out" "$compiled_dir/$name.compiled.out"
  # And the compiled evaluator itself must not observe the thread count.
  for t in 1 4; do
    # shellcheck disable=SC2086
    cargo run -p park-cli --bin park --release --offline --quiet -- \
      run "$prog" $db $updates --eval compiled --stats --threads "$t" 2>&1 \
      | sed -e 's/elapsed=[^ ]*/elapsed=_/' -e '/^threads=/d' \
      > "$compiled_dir/$name.t$t.out"
  done
  cmp "$compiled_dir/$name.t1.out" "$compiled_dir/$name.t4.out"
done
# The lowered-plan dump is stable and names every cost-model pick.
cargo run -p park-cli --bin park --release --offline --quiet -- \
  analyze examples/data/payroll.park --db examples/data/payroll.facts --plan \
  > "$compiled_dir/plan.out"
grep -q 'lowered program:' "$compiled_dir/plan.out"
rm -rf "$compiled_dir"

echo "==> serve smoke (golden session, threads 1 vs 4 byte-identical)"
serve_dir="${TMPDIR:-/tmp}/park-serve-$$"
mkdir -p "$serve_dir"
for t in 1 4; do
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    serve --threads "$t" \
    < crates/cli/tests/golden/serve_session.ndjson > "$serve_dir/t$t.out"
done
cmp "$serve_dir/t1.out" "$serve_dir/t4.out"
cmp "$serve_dir/t1.out" crates/cli/tests/golden/serve_session.golden
rm -rf "$serve_dir"

echo "==> incremental smoke (50-transaction session, --incremental on/off byte-identical)"
inc_dir="${TMPDIR:-/tmp}/park-inc-$$"
mkdir -p "$inc_dir"
{
  printf '%s\n' '{"op":"create","db":"inc","program":"e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).","facts":"e(n0, n1)."}'
  i=1
  while [ "$i" -le 50 ]; do
    printf '{"op":"transact","db":"inc","updates":"+e(n%s, n%s)."}\n' "$i" "$((i + 1))"
    i=$((i + 1))
  done
  printf '%s\n' '{"op":"settle","db":"inc"}'
  printf '%s\n' '{"op":"state","db":"inc"}'
  printf '%s\n' '{"op":"shutdown"}'
} > "$inc_dir/session.ndjson"
# The certified chain is answered warm under --incremental and from
# scratch without it; outside the opt-in stats frame (not requested
# here) the transcripts must agree to the byte. The masks mirror the
# storage smoke; serve frames carry neither field today.
for mode in plain incremental; do
  if [ "$mode" = incremental ]; then flag="--incremental"; else flag=""; fi
  # shellcheck disable=SC2086
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    serve $flag < "$inc_dir/session.ndjson" \
    | sed -e 's/elapsed=[^ ]*/elapsed=_/' -e '/^threads=/d' > "$inc_dir/$mode.out"
done
cmp "$inc_dir/plain.out" "$inc_dir/incremental.out"

# Deletion-bearing chain on a stratified-negation program: base-fact
# deletions ride the partial-stratum warm path, the derived-fact
# deletion bails to a cold conflict run — either way the transcript
# must be byte-identical to the always-cold session.
{
  printf '%s\n' '{"op":"create","db":"del","program":"e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z). r(X, Y), !blocked(X) -> +open(X, Y)."}'
  i=1
  while [ "$i" -le 20 ]; do
    printf '{"op":"transact","db":"del","updates":"+e(n%s, n%s)."}\n' "$i" "$((i + 1))"
    printf '{"op":"transact","db":"del","updates":"-e(n%s, n%s). +blocked(n%s)."}\n' "$((i + 1))" "$((i + 2))" "$i"
    i=$((i + 4))
  done
  printf '%s\n' '{"op":"transact","db":"del","updates":"-r(n1, n2)."}'
  printf '%s\n' '{"op":"settle","db":"del"}'
  printf '%s\n' '{"op":"state","db":"del"}'
  printf '%s\n' '{"op":"shutdown"}'
} > "$inc_dir/deletions.ndjson"
for mode in plain incremental; do
  if [ "$mode" = incremental ]; then flag="--incremental"; else flag=""; fi
  # shellcheck disable=SC2086
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    serve $flag < "$inc_dir/deletions.ndjson" \
    | sed -e 's/elapsed=[^ ]*/elapsed=_/' -e '/^threads=/d' > "$inc_dir/del.$mode.out"
done
cmp "$inc_dir/del.plain.out" "$inc_dir/del.incremental.out"
rm -rf "$inc_dir"

echo "==> metrics smoke (park run --metrics + park report)"
metrics_dir="${TMPDIR:-/tmp}/park-verify-$$"
mkdir -p "$metrics_dir"
cargo run -p park-cli --bin park --release --offline --quiet -- \
  run examples/data/p1.park --db examples/data/p1.facts \
  --metrics "$metrics_dir/metrics.json" > /dev/null
grep -q '"schema": "park-metrics/v1"' "$metrics_dir/metrics.json"
cargo run -p park-cli --bin park --release --offline --quiet -- \
  report "$metrics_dir/metrics.json" > "$metrics_dir/report.md"
grep -q '# PARK run-metrics report' "$metrics_dir/report.md"
rm -rf "$metrics_dir"

echo "==> park lint smoke (examples + generated workloads)"
lint_dir="${TMPDIR:-/tmp}/park-lint-$$"
mkdir -p "$lint_dir"
for w in irreflexive-graph closure chains payroll inventory inventory-guards; do
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    workload "$w" --n 20 --out "$lint_dir" > /dev/null
done
for prog in examples/data/*.park "$lint_dir"/*.park; do
  status=0
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    lint "$prog" --format json > "$lint_dir/lint.out" || status=$?
  if [ "$status" -ge 2 ]; then
    echo "verify: park lint reports error-severity diagnostics in $prog" >&2
    exit 1
  fi
  grep -q '"schema": "park-lint/v1"' "$lint_dir/lint.out"
done
rm -rf "$lint_dir"

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "verify: OK"
