#!/usr/bin/env sh
# Full verification: release build, the whole workspace test suite,
# formatting, and lints. This is the gate every change must pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test --workspace"
cargo test --workspace --offline --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> restarts bench smoke (BENCH_restarts.json)"
cargo run -p park-bench --bin report --release --offline --quiet -- --only restarts --smoke
grep -q '"replayed_steps"' BENCH_restarts.json

echo "==> differential fuzz smoke (engine vs paper-literal oracle)"
cargo run -p park-cli --bin park --release --offline --quiet -- fuzz --seed 0 --cases 200

echo "==> storage smoke (threads 1 vs 4 byte-identical on the largest example)"
storage_dir="${TMPDIR:-/tmp}/park-storage-$$"
mkdir -p "$storage_dir"
for t in 1 4; do
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    run examples/data/payroll.park --db examples/data/payroll.facts \
    --updates examples/data/payroll.updates --stats --threads "$t" 2>&1 \
    | sed -e 's/elapsed=[^ ]*/elapsed=_/' -e '/^threads=/d' > "$storage_dir/t$t.out"
done
# Results, counters (including tasks=), and blocked sets must not depend on
# the thread count; only the masked wall-clock and thread line may differ.
cmp "$storage_dir/t1.out" "$storage_dir/t4.out"
rm -rf "$storage_dir"

echo "==> serve smoke (golden session, threads 1 vs 4 byte-identical)"
serve_dir="${TMPDIR:-/tmp}/park-serve-$$"
mkdir -p "$serve_dir"
for t in 1 4; do
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    serve --threads "$t" \
    < crates/cli/tests/golden/serve_session.ndjson > "$serve_dir/t$t.out"
done
cmp "$serve_dir/t1.out" "$serve_dir/t4.out"
cmp "$serve_dir/t1.out" crates/cli/tests/golden/serve_session.golden
rm -rf "$serve_dir"

echo "==> metrics smoke (park run --metrics + park report)"
metrics_dir="${TMPDIR:-/tmp}/park-verify-$$"
mkdir -p "$metrics_dir"
cargo run -p park-cli --bin park --release --offline --quiet -- \
  run examples/data/p1.park --db examples/data/p1.facts \
  --metrics "$metrics_dir/metrics.json" > /dev/null
grep -q '"schema": "park-metrics/v1"' "$metrics_dir/metrics.json"
cargo run -p park-cli --bin park --release --offline --quiet -- \
  report "$metrics_dir/metrics.json" > "$metrics_dir/report.md"
grep -q '# PARK run-metrics report' "$metrics_dir/report.md"
rm -rf "$metrics_dir"

echo "==> park lint smoke (examples + generated workloads)"
lint_dir="${TMPDIR:-/tmp}/park-lint-$$"
mkdir -p "$lint_dir"
for w in irreflexive-graph closure chains payroll inventory inventory-guards; do
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    workload "$w" --n 20 --out "$lint_dir" > /dev/null
done
for prog in examples/data/*.park "$lint_dir"/*.park; do
  status=0
  cargo run -p park-cli --bin park --release --offline --quiet -- \
    lint "$prog" --format json > "$lint_dir/lint.out" || status=$?
  if [ "$status" -ge 2 ]; then
    echo "verify: park lint reports error-severity diagnostics in $prog" >&2
    exit 1
  fi
  grep -q '"schema": "park-lint/v1"' "$lint_dir/lint.out"
done
rm -rf "$lint_dir"

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "verify: OK"
