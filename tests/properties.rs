//! Property-based tests of the PARK semantics' guarantees.
//!
//! These turn the paper's meta-theorems into executable properties over
//! randomly generated propositional programs and databases:
//!
//! * **Unambiguity** — evaluation is deterministic.
//! * **Termination / polynomial tractability** — every run ends, within
//!   the analytic bound on restarts, under *any* policy.
//! * **Consistency** — the final i-interpretation never holds `+a` and
//!   `-a` together.
//! * **Theorem 4.1(3)** — the final interpretation is the least fixpoint
//!   of `Γ_{P,B*}` (re-running the inflationary closure under the final
//!   blocked set from `D` reproduces it exactly).
//! * **Inflationary agreement** — with insert-only heads (conflicts are
//!   impossible) PARK coincides with the plain inflationary fixpoint
//!   semantics (the naive baseline).
//! * **Syntax roundtrip** — printing and reparsing rules is the identity.

use park::baselines::naive_mark_eliminate;
use park::engine::{
    fire_all, BlockedSet, Engine, EngineOptions, IInterpretation, Inertia, ResolutionScope,
};
use park::policies::{AntiInertia, PreferDelete, PreferInsert, RandomPolicy};
use park::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

const PREDS: [&str; 6] = ["p0", "p1", "p2", "p3", "p4", "p5"];

/// A random propositional rule over the fixed predicate pool.
fn arb_rule(insert_only: bool) -> impl Strategy<Value = String> {
    let lit = (0usize..PREDS.len(), prop::bool::ANY)
        .prop_map(|(i, neg)| format!("{}{}", if neg { "!" } else { "" }, PREDS[i]));
    let body = prop::collection::vec(lit, 0..3);
    let head = (0usize..PREDS.len(), prop::bool::ANY).prop_map(move |(i, del)| {
        let sign = if del && !insert_only { "-" } else { "+" };
        format!("{sign}{}", PREDS[i])
    });
    (body, head).prop_map(|(body, head)| {
        if body.is_empty() {
            format!("-> {head}.")
        } else {
            format!("{} -> {head}.", body.join(", "))
        }
    })
}

fn arb_program(max_rules: usize, insert_only: bool) -> impl Strategy<Value = String> {
    prop::collection::vec(arb_rule(insert_only), 1..=max_rules).prop_map(|rules| rules.join("\n"))
}

fn arb_database() -> impl Strategy<Value = String> {
    proptest::sample::subsequence(PREDS.to_vec(), 0..=PREDS.len()).prop_map(|ps| {
        ps.iter()
            .map(|p| format!("{p}."))
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn run_park(
    rules: &str,
    facts: &str,
    options: EngineOptions,
    policy: &mut dyn park::engine::ConflictResolver,
) -> park::engine::ParkOutcome {
    let vocab = Vocabulary::new();
    let engine =
        Engine::with_options(Arc::clone(&vocab), &parse_program(rules).unwrap(), options).unwrap();
    let db = FactStore::from_source(vocab, facts).unwrap();
    engine.park(&db, policy).unwrap()
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unambiguity: same inputs, same policy ⇒ same result state, same
    /// statistics.
    #[test]
    fn park_is_deterministic(rules in arb_program(8, false), facts in arb_database()) {
        let a = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        let b = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        prop_assert!(a.database.same_facts(&b.database));
        prop_assert_eq!(a.stats.restarts, b.stats.restarts);
        prop_assert_eq!(a.stats.gamma_steps, b.stats.gamma_steps);
        prop_assert_eq!(a.blocked.len(), b.blocked.len());
    }

    /// Termination under arbitrary policies, with restarts within the
    /// analytic bound (one per blocked grounding; groundings here are one
    /// per rule since the programs are propositional).
    #[test]
    fn park_terminates_under_any_policy(
        rules in arb_program(8, false),
        facts in arb_database(),
        seed in any::<u64>(),
    ) {
        let n_rules = parse_program(&rules).unwrap().len() as u64;
        for policy in [
            &mut Inertia as &mut dyn park::engine::ConflictResolver,
            &mut AntiInertia,
            &mut PreferInsert,
            &mut PreferDelete,
            &mut RandomPolicy::seeded(seed),
        ] {
            let out = run_park(&rules, &facts, EngineOptions::default(), policy);
            prop_assert!(out.stats.restarts <= n_rules,
                "restarts {} exceed rule count {}", out.stats.restarts, n_rules);
        }
    }

    /// The final i-interpretation is consistent, and `incorp` of it is the
    /// reported database.
    #[test]
    fn final_interpretation_consistent(
        rules in arb_program(8, false),
        facts in arb_database(),
    ) {
        let out = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        prop_assert!(out.interpretation.is_consistent());
        prop_assert!(out.interpretation.incorp().same_facts(&out.database));
    }

    /// Theorem 4.1(3): `int(ω) = lfp(Γ_{P,B*})` — recomputing the
    /// inflationary closure from D under the final blocked set reproduces
    /// the final interpretation exactly.
    #[test]
    fn final_interp_is_lfp_of_gamma_under_final_blocked(
        rules in arb_program(8, false),
        facts in arb_database(),
    ) {
        let vocab = Vocabulary::new();
        let program = parse_program(&rules).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), facts.as_str()).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();

        // Recompute lfp(Γ_{P,B*}) from D.
        let mut interp = IInterpretation::from_database(db);
        loop {
            let fired = fire_all(&out.program, &out.blocked, &interp);
            let mut grew = false;
            for f in &fired {
                if interp.insert_marked(f.sign, f.pred, &f.tuple) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        prop_assert!(park::engine::bistructure::interp_subset(&interp, &out.interpretation));
        prop_assert!(park::engine::bistructure::interp_subset(&out.interpretation, &interp));
    }

    /// With insert-only heads conflicts are impossible: PARK never
    /// restarts and agrees with the plain inflationary fixpoint semantics
    /// (computed by the naive baseline, whose elimination step is vacuous).
    #[test]
    fn insert_only_agrees_with_inflationary_fixpoint(
        rules in arb_program(8, true),
        facts in arb_database(),
    ) {
        let vocab = Vocabulary::new();
        let program = parse_program(&rules).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), facts.as_str()).unwrap();
        let park_out = engine.park(&db, &mut Inertia).unwrap();
        prop_assert_eq!(park_out.stats.restarts, 0);

        let compiled = park::engine::CompiledProgram::compile(Arc::clone(&vocab), &program).unwrap();
        let naive = naive_mark_eliminate(&compiled, &db, &UpdateSet::empty(), 1 << 20).unwrap();
        prop_assert!(naive.eliminated.is_empty());
        prop_assert!(naive.database.same_facts(&park_out.database));
    }

    /// The result never mentions predicates absent from program and
    /// database (no invention), and D's atoms only change via rule action.
    #[test]
    fn result_is_grounded_in_inputs(
        rules in arb_program(6, false),
        facts in arb_database(),
    ) {
        let out = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        for f in out.database.sorted_display() {
            prop_assert!(PREDS.contains(&f.as_str()), "unexpected fact {f}");
        }
    }

    /// Resolution scope does not affect termination or consistency (it may
    /// legitimately change the chosen result when several conflicts
    /// interact, but both scopes must satisfy every invariant).
    #[test]
    fn one_at_a_time_scope_invariants(
        rules in arb_program(8, false),
        facts in arb_database(),
    ) {
        let opts = EngineOptions::default().with_scope(ResolutionScope::One);
        let out = run_park(&rules, &facts, opts, &mut Inertia);
        prop_assert!(out.interpretation.is_consistent());
        // Lazy blocking can only block fewer-or-equal instances than the
        // paper default on the same inputs.
        let all = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        prop_assert!(out.stats.blocked_instances <= all.stats.blocked_instances);
    }

    /// Naive and semi-naive evaluation are observably identical: same
    /// result state, same restarts, same Γ step count, same blocked set —
    /// on arbitrary programs, conflicts and all.
    #[test]
    fn seminaive_agrees_with_naive(
        rules in arb_program(8, false),
        facts in arb_database(),
    ) {
        let naive = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        let semi = run_park(
            &rules,
            &facts,
            EngineOptions::default()
                .with_evaluation(park::engine::EvaluationMode::SemiNaive),
            &mut Inertia,
        );
        prop_assert!(naive.database.same_facts(&semi.database));
        prop_assert_eq!(naive.stats.restarts, semi.stats.restarts);
        prop_assert_eq!(naive.stats.gamma_steps, semi.stats.gamma_steps);
        prop_assert_eq!(naive.blocked.len(), semi.blocked.len());

        // Parallel semi-naive (deterministic ordered merge) agrees with
        // both sequential evaluators.
        let par = run_park(
            &rules,
            &facts,
            EngineOptions::default()
                .with_evaluation(park::engine::EvaluationMode::SemiNaive)
                .with_parallelism(Some(4)),
            &mut Inertia,
        );
        prop_assert!(naive.database.same_facts(&par.database));
        prop_assert_eq!(semi.stats.restarts, par.stats.restarts);
        prop_assert_eq!(semi.stats.gamma_steps, par.stats.gamma_steps);
        prop_assert_eq!(semi.blocked.len(), par.blocked.len());
        prop_assert_eq!(semi.stats.groundings_fired, par.stats.groundings_fired);
    }

    /// Γ is inflationary: one fire/absorb step never loses marked atoms.
    #[test]
    fn gamma_is_inflationary(
        rules in arb_program(8, false),
        facts in arb_database(),
    ) {
        let vocab = Vocabulary::new();
        let program = park::engine::CompiledProgram::compile(
            Arc::clone(&vocab), &parse_program(&rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts.as_str()).unwrap();
        let mut interp = IInterpretation::from_database(db);
        let mut prev = 0usize;
        for _ in 0..6 {
            let fired = fire_all(&program, &BlockedSet::new(), &interp);
            for f in &fired {
                interp.insert_marked(f.sign, f.pred, &f.tuple);
            }
            prop_assert!(interp.marked_len() >= prev);
            prev = interp.marked_len();
        }
    }
}

// ---------------------------------------------------------------------
// Warm-restart identity
// ---------------------------------------------------------------------

/// A SELECT oracle that records every conflict it is asked to resolve,
/// in order, while deciding like [`Inertia`].
struct RecordingOracle {
    calls: Vec<String>,
}

impl park::engine::ConflictResolver for RecordingOracle {
    fn name(&self) -> &str {
        "inertia"
    }
    fn select(
        &mut self,
        ctx: &park::engine::SelectContext<'_>,
        c: &park::engine::Conflict,
    ) -> Result<park::engine::Resolution, String> {
        self.calls.push(c.display(ctx.program));
        Inertia.select(ctx, c)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Warm restarts (replaying the previous run's firing log) are
    /// observably identical to cold restarts: same traces, same SELECT
    /// call sequences, same blocked sets, same databases, and the same
    /// statistics apart from the replay/scheduling counters — across
    /// random restart-heavy programs, both evaluation modes, and a
    /// thread pool.
    #[test]
    fn warm_and_cold_restarts_are_observably_identical(
        rules in arb_program(8, false),
        facts in arb_database(),
    ) {
        use park::engine::EvaluationMode;
        for mode in [EvaluationMode::Naive, EvaluationMode::SemiNaive] {
            for par in [None, Some(4)] {
                let opts = EngineOptions::traced()
                    .with_evaluation(mode)
                    .with_parallelism(par);
                let mut warm_oracle = RecordingOracle { calls: Vec::new() };
                let warm = run_park(&rules, &facts, opts, &mut warm_oracle);
                let mut cold_oracle = RecordingOracle { calls: Vec::new() };
                let cold = run_park(
                    &rules,
                    &facts,
                    opts.with_warm_restarts(false),
                    &mut cold_oracle,
                );

                prop_assert_eq!(warm.trace.events(), cold.trace.events(),
                    "trace divergence ({:?}, par {:?}): {}", mode, par, &rules);
                prop_assert_eq!(&warm_oracle.calls, &cold_oracle.calls,
                    "SELECT order divergence ({:?}, par {:?}): {}", mode, par, &rules);
                prop_assert!(warm.database.same_facts(&cold.database), "{}", &rules);
                prop_assert_eq!(warm.blocked_display(), cold.blocked_display(),
                    "{}", &rules);
                prop_assert_eq!(warm.stats.gamma_steps, cold.stats.gamma_steps);
                prop_assert_eq!(warm.stats.restarts, cold.stats.restarts);
                prop_assert_eq!(
                    warm.stats.conflicts_resolved, cold.stats.conflicts_resolved);
                prop_assert_eq!(
                    warm.stats.groundings_fired, cold.stats.groundings_fired);
                prop_assert_eq!(
                    warm.stats.blocked_instances, cold.stats.blocked_instances);
                prop_assert_eq!(
                    warm.stats.peak_marked_atoms, cold.stats.peak_marked_atoms);

                // The cold runner must never touch the replay machinery,
                // and the warm runner must use it on every restart.
                prop_assert_eq!(cold.stats.replayed_steps, 0);
                prop_assert_eq!(cold.stats.replay_divergence_step, None);
                if warm.stats.restarts > 0 {
                    prop_assert!(warm.stats.replayed_steps > 0,
                        "restarted without replaying: {}", &rules);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Relational (first-order) differential properties
// ---------------------------------------------------------------------

/// Random rules over binary predicates e/f/g with joins, negation, events,
/// constants, and repeated variables — the shapes the join planner and
/// semi-naive evaluator must handle.
fn arb_relational_rule_src() -> impl Strategy<Value = String> {
    let pred = prop::sample::select(vec!["e", "f", "g"]);
    let shape = 0usize..6;
    (pred.clone(), pred.clone(), pred, shape, prop::bool::ANY).prop_map(
        |(p1, p2, p3, shape, del)| {
            let sign = if del { "-" } else { "+" };
            match shape {
                0 => format!("{p1}(X, Y) -> {sign}{p2}(Y, X)."),
                1 => format!("{p1}(X, Y), {p2}(Y, Z) -> {sign}{p3}(X, Z)."),
                2 => format!("{p1}(X, Y), !{p2}(X, Y) -> {sign}{p3}(X, Y)."),
                3 => format!("{p1}(X, X) -> {sign}{p2}(X, X)."),
                4 => format!("{p1}(X, a) -> {sign}{p2}(X, a)."),
                _ => format!("{p1}(X, Y), {p2}(X, Z) -> {sign}{p3}(Y, Z)."),
            }
        },
    )
}

fn arb_relational_program_src() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_relational_rule_src(), 1..6).prop_map(|rs| rs.join("\n"))
}

fn arb_relational_db_src() -> impl Strategy<Value = String> {
    let konst = prop::sample::select(vec!["a", "b", "c"]);
    let pred = prop::sample::select(vec!["e", "f", "g"]);
    prop::collection::vec((pred, konst.clone(), konst), 0..8).prop_map(|facts| {
        facts
            .into_iter()
            .map(|(p, x, y)| format!("{p}({x}, {y})."))
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full battery on relational programs: determinism, consistency,
    /// naive/semi-naive agreement, and the Theorem 4.1(3) recomputation.
    #[test]
    fn relational_differential_battery(
        rules in arb_relational_program_src(),
        facts in arb_relational_db_src(),
    ) {
        let naive = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        let again = run_park(&rules, &facts, EngineOptions::default(), &mut Inertia);
        prop_assert!(naive.database.same_facts(&again.database), "nondeterministic");
        prop_assert!(naive.interpretation.is_consistent());

        let semi = run_park(
            &rules,
            &facts,
            EngineOptions::default()
                .with_evaluation(park::engine::EvaluationMode::SemiNaive),
            &mut Inertia,
        );
        prop_assert!(naive.database.same_facts(&semi.database),
            "naive {:?} vs semi {:?}",
            naive.database.sorted_display(), semi.database.sorted_display());
        prop_assert_eq!(naive.stats.gamma_steps, semi.stats.gamma_steps);
        prop_assert_eq!(naive.stats.restarts, semi.stats.restarts);
        prop_assert_eq!(
            naive.blocked.len(), semi.blocked.len(),
            "blocked sets diverge"
        );

        let par = run_park(
            &rules,
            &facts,
            EngineOptions::default()
                .with_evaluation(park::engine::EvaluationMode::SemiNaive)
                .with_parallelism(Some(4)),
            &mut Inertia,
        );
        prop_assert!(semi.database.same_facts(&par.database),
            "parallel semi-naive diverged: {:?} vs {:?}",
            semi.database.sorted_display(), par.database.sorted_display());
        prop_assert_eq!(semi.stats.gamma_steps, par.stats.gamma_steps);
        prop_assert_eq!(semi.stats.restarts, par.stats.restarts);
        prop_assert_eq!(semi.stats.groundings_fired, par.stats.groundings_fired);
        prop_assert_eq!(semi.blocked.len(), par.blocked.len());

        // Theorem 4.1(3): lfp(Γ_{P,B*}) from D reproduces the fixpoint.
        // (I° is D throughout a run, so the outcome's base zone *is* D.)
        let mut interp = IInterpretation::from_database(naive.interpretation.base().clone());
        loop {
            let fired = fire_all(&naive.program, &naive.blocked, &interp);
            let mut grew = false;
            for f in &fired {
                if interp.insert_marked(f.sign, f.pred, &f.tuple) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        prop_assert!(park::engine::bistructure::interp_subset(&interp, &naive.interpretation));
        prop_assert!(park::engine::bistructure::interp_subset(&naive.interpretation, &interp));
    }

    /// Relational programs terminate within bounds under adversarial
    /// policies too.
    #[test]
    fn relational_terminates_under_policies(
        rules in arb_relational_program_src(),
        facts in arb_relational_db_src(),
        seed in any::<u64>(),
    ) {
        for policy in [
            &mut AntiInertia as &mut dyn park::engine::ConflictResolver,
            &mut PreferInsert,
            &mut RandomPolicy::seeded(seed),
        ] {
            let out = run_park(&rules, &facts, EngineOptions::default(), policy);
            prop_assert!(out.interpretation.is_consistent());
        }
    }
}

// ---------------------------------------------------------------------
// Query properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conjunctive-query answers equal brute-force enumeration: for a
    /// random binary relation and the query `e(X, Y), !e(Y, X), X != Y`,
    /// the engine's rows match a direct nested-loop computation.
    #[test]
    fn query_matches_bruteforce(facts in arb_relational_db_src()) {
        let vocab = Vocabulary::new();
        let db = FactStore::from_source(Arc::clone(&vocab), facts.as_str()).unwrap();
        let q = park::engine::Query::parse(&vocab, "e(X, Y), !e(Y, X), X != Y").unwrap();
        let got: std::collections::BTreeSet<String> =
            q.render_rows(&q.run_on_database(&db)).into_iter().collect();

        // Brute force over the rendered facts.
        let e_pairs: Vec<(String, String)> = db
            .sorted_display()
            .into_iter()
            .filter(|f| f.starts_with("e("))
            .map(|f| {
                let inner = f[2..f.len() - 1].to_string();
                let (x, y) = inner.split_once(", ").unwrap();
                (x.to_string(), y.to_string())
            })
            .collect();
        let expected: std::collections::BTreeSet<String> = e_pairs
            .iter()
            .filter(|(x, y)| x != y && !e_pairs.contains(&(y.clone(), x.clone())))
            .map(|(x, y)| format!("X = {x}, Y = {y}"))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Querying a PARK result for a deleted atom never succeeds: after a
    /// deletion-only program runs, `?- a` holds iff `a` survived.
    #[test]
    fn query_agrees_with_membership(facts in arb_relational_db_src()) {
        let vocab = Vocabulary::new();
        let program = parse_program("e(X, Y) -> -f(X, Y).").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), facts.as_str()).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        let q = park::engine::Query::parse(&vocab, "f(X, Y), e(X, Y)").unwrap();
        prop_assert!(
            q.run_on_database(&out.database).is_empty(),
            "an f-fact with a matching e-fact survived the deletion rule"
        );
    }
}

// ---------------------------------------------------------------------
// Syntax roundtrip properties
// ---------------------------------------------------------------------

fn arb_relational_rule() -> impl Strategy<Value = String> {
    // Rules over binary predicates with variables and constants; safety is
    // ensured by making the head copy variables of the first body literal.
    let konst = prop::sample::select(vec!["a", "b", "c7", "d_e"]);
    let pred = prop::sample::select(vec!["e", "f", "g"]);
    (pred.clone(), konst, pred, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(p1, k, p2, neg, del)| {
            let negs = if neg { "!" } else { "" };
            let sign = if del { "-" } else { "+" };
            format!("{p1}(X, Y), {negs}{p2}(X, {k}) -> {sign}{p1}(Y, X).")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pretty-printing then reparsing a rule is the identity (up to spans).
    #[test]
    fn rule_display_parse_roundtrip(src in arb_relational_rule()) {
        let r1 = parse_rule(&src).unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        let strip = |mut r: Rule| { r.span = park::syntax::Span::synthetic(); r };
        prop_assert_eq!(strip(r1), strip(r2));
    }

    /// Fact stores roundtrip through their `.facts` source rendering.
    #[test]
    fn factstore_source_roundtrip(facts in arb_database()) {
        let v1 = Vocabulary::new();
        let s1 = FactStore::from_source(v1, facts.as_str()).unwrap();
        let s2 = FactStore::from_source(Vocabulary::new(), &s1.to_source()).unwrap();
        prop_assert_eq!(s1.sorted_display(), s2.sorted_display());
    }

    /// Snapshots roundtrip through JSON.
    #[test]
    fn snapshot_json_roundtrip(facts in arb_database()) {
        let store = FactStore::from_source(Vocabulary::new(), facts.as_str()).unwrap();
        let snap = Snapshot::of(&store);
        let back = Snapshot::from_json(&snap.to_json().unwrap()).unwrap();
        let restored = back.restore(Vocabulary::new()).unwrap();
        prop_assert_eq!(restored.sorted_display(), store.sorted_display());
    }
}
