//! Property tests for the interned storage layer (see `docs/storage.md`).
//!
//! The intern table maps `Value`s to dense `Code`s so relations can store
//! contiguous `u32` columns, but two invariants keep the encoding invisible
//! to the PARK semantics:
//!
//! * **Round-trip** — `decode(encode(v)) == v` for every `Value` shape:
//!   symbols, small integers (|i| < 2^30, embedded in the code), and
//!   spilled big integers.
//! * **Intern-order independence** — every observable ordering (the sorted
//!   database display, query answers, and the sequence of conflicts a
//!   `SELECT` policy sees) is derived from decoded `Value`s, never from
//!   intern codes. Pre-interning every identifier in reversed order
//!   assigns different codes to the same symbols while leaving fact
//!   insertion order untouched, so running both ways and demanding
//!   byte-identical output pins the invariant down.

use park::engine::{ConflictResolver, Engine, EngineOptions, EvaluationMode, Inertia};
use park::policies::{PreferInsert, RandomPolicy};
use park::storage::{FactStore, Value, Vocabulary};
use park::syntax::parse_program;
use park::workloads as wl;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A named factory for a fresh `SELECT` policy instance.
type PolicyFactory = (&'static str, fn() -> Box<dyn ConflictResolver>);

// ---------------------------------------------------------------------
// Round-trip: every Value shape survives encode/decode
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intern_roundtrips_every_value_shape(
        names in prop::collection::vec("[a-z]{1,12}", 1..8),
        ints in prop::collection::vec(prop_oneof![
            any::<i64>(),
            -(1i64 << 31)..(1i64 << 31),
            -64i64..64,
        ], 1..16),
    ) {
        let vocab = Vocabulary::new();
        let mut values: Vec<Value> = names.iter().map(|n| Value::Sym(vocab.sym(n))).collect();
        values.extend(ints.iter().map(|&i| Value::Int(i)));
        // The tag-scheme boundaries: largest/smallest embedded small ints
        // and the first spilled magnitudes on either side.
        for edge in [
            0,
            (1i64 << 30) - 1,
            1i64 << 30,
            -(1i64 << 30),
            -(1i64 << 30) - 1,
            i64::MIN,
            i64::MAX,
        ] {
            values.push(Value::Int(edge));
        }
        let mut by_code: HashMap<u32, Value> = HashMap::new();
        for &v in &values {
            let c = vocab.encode(v);
            prop_assert_eq!(vocab.decode(c), v, "decode(encode({:?}))", v);
            // Encoding is stable: the same value always gets the same code.
            prop_assert_eq!(vocab.encode(v), c);
            // And injective: one code never stands for two values.
            if let Some(prev) = by_code.insert(c.0, v) {
                prop_assert_eq!(prev, v, "code {} is shared", c.0);
            }
        }
    }

    // Symbol codes and small-int codes preserve their domain order, which
    // is what lets hot paths compare codes without decoding.
    #[test]
    fn small_int_codes_are_order_preserving(
        a in -(1i64 << 30)..(1i64 << 30),
        b in -(1i64 << 30)..(1i64 << 30),
    ) {
        let vocab = Vocabulary::new();
        let (ca, cb) = (vocab.encode(Value::Int(a)), vocab.encode(Value::Int(b)));
        prop_assert_eq!(a.cmp(&b), ca.cmp(&cb));
    }
}

// ---------------------------------------------------------------------
// Intern-order independence across the workload crates
// ---------------------------------------------------------------------

/// Every identifier token of a program/facts source, first-seen order.
fn idents(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut cur = String::new();
    for ch in text.chars().chain(std::iter::once(' ')) {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            cur.push(ch);
        } else if !cur.is_empty() {
            let tok = std::mem::take(&mut cur);
            if tok.starts_with(|c: char| c.is_ascii_alphabetic()) && seen.insert(tok.clone()) {
                out.push(tok);
            }
        }
    }
    out
}

/// Run a workload, optionally pre-interning `preseed` symbols into the
/// fresh vocabulary before the program compiles — which reassigns every
/// symbol's intern code while leaving the database contents, fact
/// insertion order, and rule order untouched.
fn run_with(
    rules: &str,
    facts: &str,
    options: EngineOptions,
    policy: &mut dyn ConflictResolver,
    preseed: &[String],
) -> (Vec<String>, Arc<Vocabulary>) {
    let vocab = Vocabulary::new();
    for name in preseed {
        vocab.sym(name);
    }
    let engine =
        Engine::with_options(Arc::clone(&vocab), &parse_program(rules).unwrap(), options).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), facts).unwrap();
    let out = engine.park(&db, policy).unwrap();
    (out.database.sorted_display(), vocab)
}

/// Run a workload twice — once with default first-seen interning, once
/// with every identifier pre-interned in *reversed* order — and demand
/// byte-identical sorted output under every evaluation mode and policy.
/// The reversed run assigns different codes to the same symbols while the
/// grounding enumeration order stays identical, so any place that orders
/// observable output by intern code (rather than by decoded `Value`)
/// diverges. The seeded random policy is the sharpest probe: its decisions
/// depend on the exact sequence of conflicts SELECT shows it.
fn assert_intern_order_independent(name: &str, rules: &str, facts: &str) {
    let mut reversed = idents(&format!("{rules}\n{facts}"));
    reversed.reverse();
    assert!(reversed.len() > 1, "{name}: nothing to reorder");
    let policies: [PolicyFactory; 3] = [
        ("inertia", || Box::new(Inertia)),
        ("prefer-insert", || Box::new(PreferInsert)),
        ("random:7", || Box::new(RandomPolicy::seeded(7))),
    ];
    for eval in [
        EvaluationMode::Naive,
        EvaluationMode::SemiNaive,
        EvaluationMode::Compiled,
    ] {
        let options = EngineOptions::default().with_evaluation(eval);
        for (pname, mk) in policies {
            let (a, _va) = run_with(rules, facts, options, mk().as_mut(), &[]);
            let (b, vb) = run_with(rules, facts, options, mk().as_mut(), &reversed);
            // The pre-seeding took effect: symbol ids ascend along the
            // reversed identifier list, so every pair of constants has its
            // relative id order flipped vs. first-seen interning.
            assert!(
                vb.sym(&reversed[0]) < vb.sym(&reversed[reversed.len() - 1]),
                "{name}: pre-interning did not assign ids in preseed order"
            );
            assert_eq!(
                a, b,
                "{name}/{eval:?}/{pname}: output ordering depends on intern order"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The compiled evaluator's lowering must not leak intern codes either
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled evaluator lowers rules against the starting database
    /// (cost-model index picks, probe keys, register checks all speak raw
    /// `Code`s), so it gets its own generative probe: across random graph
    /// shapes and conflict chains, its committed output must be
    /// byte-identical with and without reversed intern preseeding — the
    /// decode-at-boundary ordering rule has to survive lowering — and
    /// identical to the semi-naive evaluator's on the same inputs.
    #[test]
    fn compiled_output_is_intern_order_independent(
        pick in 0usize..2,
        size in 8usize..32,
        degree in 1u32..5,
        seed in 0u64..1000,
    ) {
        let (rules, facts) = match pick {
            0 => (
                wl::transitive_closure_program(),
                wl::erdos_renyi_edges(size, f64::from(degree) / size as f64, seed),
            ),
            _ => wl::staggered_conflicts(2 + size % 8),
        };
        let mut reversed = idents(&format!("{rules}\n{facts}"));
        reversed.reverse();
        prop_assert!(reversed.len() > 1, "nothing to reorder");
        let compiled = EngineOptions::default().with_evaluation(EvaluationMode::Compiled);
        let semi = EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive);
        let policy = || RandomPolicy::seeded(seed ^ 0x9e37);
        let (a, _) = run_with(&rules, &facts, compiled, &mut policy(), &[]);
        let (b, _) = run_with(&rules, &facts, compiled, &mut policy(), &reversed);
        prop_assert_eq!(&a, &b, "compiled output depends on intern order");
        let (s, _) = run_with(&rules, &facts, semi, &mut policy(), &[]);
        prop_assert_eq!(&a, &s, "compiled and semi-naive outputs diverge");
    }
}

#[test]
fn closure_workload_is_intern_order_independent() {
    assert_intern_order_independent(
        "closure",
        &wl::transitive_closure_program(),
        &wl::erdos_renyi_edges(32, 4.0 / 32.0, 9),
    );
}

#[test]
fn chains_workload_is_intern_order_independent() {
    let (rules, facts) = wl::staggered_conflicts(8);
    assert_intern_order_independent("chains", &rules, &facts);
}

#[test]
fn partition_workload_is_intern_order_independent() {
    assert_intern_order_independent(
        "partition",
        &wl::guard_partition_program(4),
        &wl::guard_partition_database(4, 50),
    );
}

#[test]
fn payroll_workload_is_intern_order_independent() {
    let cfg = wl::PayrollConfig {
        employees: 40,
        p_active: 0.8,
        p_eligible: 0.7,
        p_flagged: 0.5,
        p_deactivate: 0.3,
        seed: 13,
    };
    let (facts, _) = wl::payroll_database(&cfg);
    assert_intern_order_independent("payroll", &wl::payroll_program(), &facts);
}
