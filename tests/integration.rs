//! Cross-crate integration tests: workloads through the engine, policies,
//! baselines, and persistence together.

use park::baselines::{immediate_fire, naive_mark_eliminate, ImmediateConfig};
use park::engine::{CompiledProgram, Engine, EngineOptions, Inertia, ResolutionScope};
use park::policies::{Interactive, PreferInsert, Recording, Resolution, RulePriority};
use park::prelude::*;
use park::workloads as wl;
use std::sync::Arc;

/// The payroll workload end to end: generate, evaluate with events,
/// snapshot, reload, re-evaluate — a second transaction on the persisted
/// state keeps cascading.
#[test]
fn payroll_snapshot_reload_cycle() {
    let cfg = wl::PayrollConfig {
        employees: 120,
        seed: 5,
        ..Default::default()
    };
    let (facts, tx) = wl::payroll_database(&cfg);
    let vocab = Vocabulary::new();
    let program = parse_program(&wl::payroll_program()).unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &facts).unwrap();
    let updates = UpdateSet::from_source(&vocab, &tx).unwrap();
    let out = engine.run(&db, &updates, &mut Inertia).unwrap();

    // Persist and reload into a *fresh* vocabulary.
    let json = Snapshot::of(&out.database).to_json().unwrap();
    let vocab2 = Vocabulary::new();
    let reloaded = Snapshot::from_json(&json)
        .unwrap()
        .restore(Arc::clone(&vocab2))
        .unwrap();
    assert_eq!(reloaded.sorted_display(), out.database.sorted_display());

    // A second transaction against the reloaded state.
    let engine2 = Engine::new(Arc::clone(&vocab2), &program).unwrap();
    let still_active: Vec<String> = reloaded
        .sorted_display()
        .into_iter()
        .filter(|f| f.starts_with("active("))
        .take(3)
        .collect();
    assert!(!still_active.is_empty(), "some employees survive round one");
    let tx2: String = still_active
        .iter()
        .map(|f| format!("-{f}."))
        .collect::<Vec<_>>()
        .join(" ");
    let updates2 = UpdateSet::from_source(&vocab2, &tx2).unwrap();
    let out2 = engine2.run(&reloaded, &updates2, &mut Inertia).unwrap();
    for f in &still_active {
        let emp = &f[7..f.len() - 1];
        assert!(
            out2.database
                .sorted_display()
                .contains(&format!("offboard({emp})")),
            "second round must offboard {emp}"
        );
    }
}

/// PARK result states diverge from the naive baseline exactly on programs
/// whose conflicts feed other rules — quantified on the chain workload.
#[test]
fn naive_baseline_divergence_on_chains() {
    // Extend each chain's goal with a dependent fact: if goal_i survives
    // incorrectly, witness_i appears.
    let (mut program_src, facts) = wl::parallel_conflicts(3, 2);
    for i in 0..3 {
        program_src.push_str(&format!("w{i}: goal{i} -> +witness{i}.\n"));
    }
    let vocab = Vocabulary::new();
    let program = parse_program(&program_src).unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &facts).unwrap();
    let park_out = engine.park(&db, &mut Inertia).unwrap();
    let compiled = CompiledProgram::compile(Arc::clone(&vocab), &program).unwrap();
    let naive_out = naive_mark_eliminate(&compiled, &db, &UpdateSet::empty(), 1 << 20).unwrap();

    // PARK: goals are resolved away before they can derive witnesses.
    assert!(
        !park_out
            .database
            .sorted_display()
            .iter()
            .any(|f| f.starts_with("witness")),
        "{:?}",
        park_out.database.sorted_display()
    );
    // Naive: the goal marks existed transiently, so witnesses leak.
    assert!(
        naive_out
            .database
            .sorted_display()
            .iter()
            .any(|f| f.starts_with("witness")),
        "{:?}",
        naive_out.database.sorted_display()
    );
}

/// Immediate-fire order dependence versus PARK's unambiguity on the same
/// program.
#[test]
fn immediate_order_dependence_vs_park() {
    let rules = "r1: p -> +q. r2: !q -> +r.";
    let vocab = Vocabulary::new();
    let program = parse_program(rules).unwrap();
    let compiled = CompiledProgram::compile(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), "p.").unwrap();

    let fwd = immediate_fire(&compiled, &db, ImmediateConfig::default());
    let rev = immediate_fire(
        &compiled,
        &db,
        ImmediateConfig {
            order: park::baselines::FiringOrder::ReverseRuleOrder,
            ..Default::default()
        },
    );
    assert!(
        !fwd.database().same_facts(rev.database()),
        "order dependence"
    );

    // PARK: one answer. (!q is judged against the same interpretation in
    // the same step, so both rules fire: {p, q, r}.)
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let a = engine.park(&db, &mut Inertia).unwrap();
    let b = engine.park(&db, &mut Inertia).unwrap();
    assert!(a.database.same_facts(&b.database));
    assert_eq!(a.database.to_string(), "{p, q, r}");
}

/// The irreflexive-graph workload at n = 6 under an interactive policy
/// scripted to keep arcs i -> i+1 only.
#[test]
fn scripted_interactive_on_scaled_graph() {
    let n = 6usize;
    let vocab = Vocabulary::new();
    let program = parse_program(&wl::irreflexive_graph_program()).unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &wl::nodes_database(n)).unwrap();

    // All n² arcs conflict in one batch, in deterministic derivation order
    // (r1 enumerates p(X) then p(Y) in insertion order): (n0,n0), (n0,n1),
    // … Script the answers accordingly: keep X -> Y iff Y = X+1.
    let mut script = Vec::new();
    for i in 0..n {
        for j in 0..n {
            script.push(if j == i + 1 {
                Resolution::Insert
            } else {
                Resolution::Delete
            });
        }
    }
    let mut policy = Interactive::scripted(script);
    let out = engine.park(&db, &mut policy).unwrap();
    let kept: Vec<String> = out
        .database
        .sorted_display()
        .into_iter()
        .filter(|f| f.starts_with("q("))
        .collect();
    assert_eq!(kept.len(), n - 1, "{kept:?}");
    for i in 0..n - 1 {
        assert!(kept.contains(&format!("q(n{i}, n{})", i + 1)), "{kept:?}");
    }
}

/// Scope ablation on staggered chains: identical results, different
/// restart/blocking trade-off, for every chain count.
#[test]
fn scope_ablation_grid() {
    for k in [1usize, 3, 6] {
        let (p, f) = wl::staggered_conflicts(k);
        let mk = |scope| {
            let vocab = Vocabulary::new();
            let engine = Engine::with_options(
                Arc::clone(&vocab),
                &parse_program(&p).unwrap(),
                EngineOptions::default().with_scope(scope),
            )
            .unwrap();
            let db = FactStore::from_source(vocab, &f).unwrap();
            engine.park(&db, &mut Inertia).unwrap()
        };
        let all = mk(ResolutionScope::All);
        let one = mk(ResolutionScope::One);
        assert!(all.database.same_facts(&one.database), "k={k}");
        assert_eq!(
            all.stats.restarts, k as u64,
            "staggered ⇒ one restart per chain"
        );
        assert!(one.stats.blocked_instances <= all.stats.blocked_instances);
    }
}

/// Priorities recorded through the Recording combinator match the
/// trace's conflict events.
#[test]
fn recording_matches_trace() {
    let vocab = Vocabulary::new();
    let program = parse_program(
        "@priority(1) r1: p -> +q. @priority(9) r2: p -> -q. @priority(1) r3: p -> +z.",
    )
    .unwrap();
    let engine =
        Engine::with_options(Arc::clone(&vocab), &program, EngineOptions::traced()).unwrap();
    let db = FactStore::from_source(vocab, "p.").unwrap();
    let mut rec = Recording::new(RulePriority::new());
    let out = engine.park(&db, &mut rec).unwrap();
    assert_eq!(rec.decisions().len(), 1);
    assert_eq!(rec.decisions()[0].resolution, Resolution::Delete);
    let conflict_events = out
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, park::engine::TraceEvent::ConflictResolved { .. }))
        .count();
    assert_eq!(conflict_events, 1);
    assert_eq!(out.database.to_string(), "{p, z}");
}

/// Multi-hop event cascades: an update event triggers a rule whose own
/// update triggers another event rule, through three hops.
#[test]
fn event_cascade_three_hops() {
    let vocab = Vocabulary::new();
    let program = parse_program(
        "h1: -a(X) -> +b(X).
         h2: +b(X) -> -c(X).
         h3: -c(X) -> +d(X).",
    )
    .unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), "a(x). c(x).").unwrap();
    let updates = UpdateSet::from_source(&vocab, "-a(x).").unwrap();
    let out = engine.run(&db, &updates, &mut Inertia).unwrap();
    assert_eq!(out.database.sorted_display(), vec!["b(x)", "d(x)"]);
}

/// A conflict between two *policies'* views is not a conflict for the
/// engine: prefer-insert and prefer-delete both terminate with consistent
/// (different) answers on the inventory workload.
#[test]
fn inventory_policy_spread() {
    let cfg = wl::InventoryConfig {
        items: 80,
        seed: 3,
        ..Default::default()
    };
    let vocab = Vocabulary::new();
    let program = parse_program(&wl::inventory_program()).unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(vocab, &wl::inventory_database(&cfg)).unwrap();
    let ins = engine.park(&db, &mut PreferInsert).unwrap();
    let del = engine.park(&db, &mut Inertia).unwrap();
    let orders = |s: &FactStore| {
        s.sorted_display()
            .iter()
            .filter(|f| f.starts_with("order("))
            .count()
    };
    assert!(orders(&ins.database) >= orders(&del.database));
    assert!(ins.interpretation.is_consistent());
    assert!(del.interpretation.is_consistent());
}

/// A transaction that contradicts itself (`U = {+a, -a}`) is a conflict
/// between the two synthetic `tx` rules; the policy resolves it like any
/// other conflict. Under inertia the atom keeps its original status.
#[test]
fn self_conflicting_transaction() {
    let vocab = Vocabulary::new();
    let program = parse_program("watch: +a -> +saw_insert. unwatch: -a -> +saw_delete.").unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();

    // a ∉ D: inertia resolves to delete — the insertion tx blocks, the
    // deletion stands (a no-op on an absent atom), and only the delete
    // event is observed.
    let db = FactStore::new(Arc::clone(&vocab));
    let updates = UpdateSet::from_source(&vocab, "+a. -a.").unwrap();
    let out = engine.run(&db, &updates, &mut Inertia).unwrap();
    assert_eq!(out.database.sorted_display(), vec!["saw_delete"]);
    assert_eq!(out.stats.restarts, 1);

    // a ∈ D: inertia resolves to insert — a survives.
    let db = FactStore::from_source(Arc::clone(&vocab), "a.").unwrap();
    let out = engine.run(&db, &updates, &mut Inertia).unwrap();
    assert_eq!(out.database.sorted_display(), vec!["a", "saw_insert"]);
}

/// Duplicate updates in one transaction are idempotent: two `tx` rules
/// with the same head derive one mark, no conflict.
#[test]
fn duplicate_updates_are_idempotent() {
    let vocab = Vocabulary::new();
    let program = parse_program("watch: +a(X) -> +seen(X).").unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::new(Arc::clone(&vocab));
    let updates = UpdateSet::from_source(&vocab, "+a(x). +a(x).").unwrap();
    let out = engine.run(&db, &updates, &mut Inertia).unwrap();
    assert_eq!(out.database.sorted_display(), vec!["a(x)", "seen(x)"]);
    assert_eq!(out.stats.restarts, 0);
}

/// Policy routing and memoization compose: bonuses routed to priority,
/// everything else decided once and replayed.
#[test]
fn composed_policies_over_payroll() {
    use park::policies::{Memoized, PerPredicate};
    let cfg = wl::PayrollConfig {
        employees: 60,
        p_flagged: 0.5,
        seed: 17,
        ..Default::default()
    };
    let (facts, tx) = wl::payroll_database(&cfg);
    let vocab = Vocabulary::new();
    let program = parse_program(&wl::payroll_program()).unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &facts).unwrap();
    let updates = UpdateSet::from_source(&vocab, &tx).unwrap();

    let mut policy = Memoized::new(
        PerPredicate::new(Box::new(Inertia))
            .route("bonus", Box::new(park::policies::RulePriority::new())),
    );
    let out = engine.run(&db, &updates, &mut policy).unwrap();
    assert!(out.interpretation.is_consistent());
    // deny (@2) outranks grant (@1): no flagged employee holds a bonus.
    let result = out.database.sorted_display();
    for f in result.iter().filter(|f| f.starts_with("bonus(")) {
        let emp = &f[6..f.len() - 1];
        assert!(
            !result.contains(&format!("flagged({emp})")),
            "flagged {emp} kept a bonus"
        );
    }
}

/// Stratified-datalog agreement at workload scale: the reachability
/// program (positive, recursive) gives the same model under PARK and
/// under the deductive baseline.
#[test]
fn stratified_agreement_on_reachability() {
    use park::baselines::stratified_datalog;
    use park::engine::CompiledProgram;
    let rules = wl::reachability_program();
    let mut facts = wl::erdos_renyi_edges(40, 0.08, 23);
    facts.push_str("source(n0).");
    let vocab = Vocabulary::new();
    let program = parse_program(&rules).unwrap();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &facts).unwrap();
    let park_out = engine.park(&db, &mut Inertia).unwrap();
    let compiled = CompiledProgram::compile(Arc::clone(&vocab), &program).unwrap();
    let strat = stratified_datalog(&compiled, &db, 1 << 20).unwrap();
    assert!(park_out.database.same_facts(&strat.database));
}
