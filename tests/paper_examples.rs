//! Conformance tests: every worked example in the paper, end to end.
//!
//! Each test is indexed (E1–E8) in DESIGN.md and EXPERIMENTS.md and asserts
//! the exact result state the paper prints — and, where the paper shows
//! them, the intermediate interpretations, conflicts, and blocked sets.

use park::engine::{
    Conflict, ConflictResolver, Engine, EngineOptions, Inertia, Resolution, SelectContext,
};
use park::policies::RulePriority;
use park::prelude::*;

fn engine(rules: &str, vocab: &std::sync::Arc<Vocabulary>) -> Engine {
    Engine::with_options(
        std::sync::Arc::clone(vocab),
        &parse_program(rules).unwrap(),
        EngineOptions::traced(),
    )
    .unwrap()
}

fn db(vocab: &std::sync::Arc<Vocabulary>, facts: &str) -> FactStore {
    FactStore::from_source(std::sync::Arc::clone(vocab), facts).unwrap()
}

/// E1 — Section 4.1, program P1 on D = {p}, principle of inertia.
///
/// Paper: the conflicting pair +a/-a is eliminated; result {p, q}.
#[test]
fn e1_p1_inertia() {
    let vocab = Vocabulary::new();
    let eng = engine("r1: p -> +q. r2: p -> -a. r3: q -> +a.", &vocab);
    let out = eng.park(&db(&vocab, "p."), &mut Inertia).unwrap();
    assert_eq!(out.database.to_string(), "{p, q}");
    // The final i-interpretation is ⟨{r3}, {p, +q, -a}⟩: the inserting
    // instance was blocked, the deleting one stands.
    assert_eq!(out.interpretation.display(), "{-a, p, +q}");
    assert_eq!(out.blocked_display(), vec!["(r3)"]);
}

/// E2 — Section 4.1, program P2 on D = {p}, principle of inertia.
///
/// Paper: "The desired result database state is thus {p, q, r}" — `s` must
/// not survive (its only reason was the invalidated +a), `r` must.
#[test]
fn e2_p2_obsolete_consequences() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "p."), &mut Inertia).unwrap();
    assert_eq!(out.database.to_string(), "{p, q, r}");
}

/// E3 — Section 4.1, program P3 on D = {p}: the false-conflict example.
///
/// Paper: "The correct result is therefore {p, +a}, or, after
/// incorporating the updates, {p, a}."
#[test]
fn e3_p3_false_conflict() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "p."), &mut Inertia).unwrap();
    assert_eq!(out.database.to_string(), "{a, p}");
    // The paper's correct fixpoint is {p, +a} plus the standing -q mark.
    assert_eq!(out.interpretation.display(), "{+a, p, -q}");
}

/// E4 — the Section 4.2 worked fixpoint: the irreflexive graph on
/// D = {p(a), p(b), p(c)} with the paper's custom SELECT.
///
/// Paper: PARK(P, D) = {p(a), p(b), p(c), q(a,b), q(b,a), q(b,c), q(c,b)},
/// with B = 5 instances of r1 and 12 instances of r3 blocked.
#[test]
fn e4_irreflexive_graph() {
    struct PaperSelect;
    impl ConflictResolver for PaperSelect {
        fn name(&self) -> &str {
            "paper-4.2"
        }
        fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
            let v = ctx.program.vocab();
            let x = v.constant(c.tuple.get(0)).to_string();
            let y = v.constant(c.tuple.get(1)).to_string();
            // "We decide to block all instances of rule r1 with x = y and
            // those connecting a and c. In all other cases, the instances
            // of r3 are blocked."
            if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
                Ok(Resolution::Delete)
            } else {
                Ok(Resolution::Insert)
            }
        }
    }

    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p(X), p(Y) -> +q(X, Y).
         r2: q(X, X) -> -q(X, X).
         r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
        &vocab,
    );
    let out = eng
        .park(&db(&vocab, "p(a). p(b). p(c)."), &mut PaperSelect)
        .unwrap();
    assert_eq!(
        out.database.sorted_display(),
        vec!["p(a)", "p(b)", "p(c)", "q(a, b)", "q(b, a)", "q(b, c)", "q(c, b)"]
    );
    // One conflict-resolution restart, exactly as the paper's computation.
    assert_eq!(out.stats.restarts, 1);
    // All nine candidate arcs were in conflict at I1.
    assert_eq!(out.stats.conflicts_resolved, 9);
    // The paper's blocked set: r1 for the 3 diagonal + 2 a–c arcs, and r3's
    // three z-instances for each of the 4 surviving arcs.
    let blocked = out.blocked_display();
    assert_eq!(blocked.len(), 5 + 12, "{blocked:#?}");
    assert_eq!(blocked.iter().filter(|b| b.starts_with("(r1")).count(), 5);
    assert_eq!(blocked.iter().filter(|b| b.starts_with("(r3")).count(), 12);
    assert!(
        blocked.contains(&"(r1, [X <- a, Y <- a])".to_string()),
        "{blocked:#?}"
    );
    assert!(
        blocked.contains(&"(r3, [X <- a, Y <- b, Z <- c])".to_string()),
        "{blocked:#?}"
    );
}

/// E5 — Section 4.3, first ECA example (no conflicts).
///
/// Paper: PARK(D, P, U) = {p(a), q(a), q(b), r(a), r(b)}.
#[test]
fn e5_eca_no_conflict() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p(X) -> +q(X). r2: q(X) -> +r(X). r3: +r(X) -> -s(X).",
        &vocab,
    );
    let d = db(&vocab, "p(a). s(a). s(b).");
    let u = UpdateSet::from_source(&vocab, "+q(b).").unwrap();
    let out = eng.run(&d, &u, &mut Inertia).unwrap();
    assert_eq!(
        out.database.sorted_display(),
        vec!["p(a)", "q(a)", "q(b)", "r(a)", "r(b)"]
    );
    assert_eq!(out.stats.restarts, 0);
    // The paper's fixpoint I3 (with the ECA-extended program P_U):
    assert_eq!(
        out.interpretation.display(),
        "{p(a), +q(a), +q(b), +r(a), +r(b), s(a), -s(a), s(b), -s(b)}"
    );
}

/// E6 — Section 4.3, second ECA example (conflict under inertia).
///
/// Paper: restart blocks the r1 instance (inertia keeps p(a,a) ∈ D); the
/// printed final answer {p(a,a), p(a,b), p(a,c), r(a,a)} omits q(a,a) —
/// an erratum: the paper's own fixpoint listing I5 contains q(a,a), and
/// `incorp` cannot drop it (see EXPERIMENTS.md).
#[test]
fn e6_eca_with_conflict() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: q(X, a) -> -p(X, a). r2: q(a, X) -> +r(a, X). r3: +r(X, Y) -> +p(X, Y).",
        &vocab,
    );
    let d = db(&vocab, "p(a, a). p(a, b). p(a, c).");
    let u = UpdateSet::from_source(&vocab, "+q(a, a).").unwrap();
    let out = eng.run(&d, &u, &mut Inertia).unwrap();
    assert_eq!(
        out.database.sorted_display(),
        vec!["p(a, a)", "p(a, b)", "p(a, c)", "q(a, a)", "r(a, a)"]
    );
    assert_eq!(out.stats.restarts, 1);
    let blocked = out.blocked_display();
    assert_eq!(blocked, vec!["(r1, [X <- a])"]);
}

/// E7a — Section 5, the five-rule program under the principle of inertia.
///
/// Paper: fixpoint ⟨{r2, r5}, {p, +a, -q, +b}⟩; result {p, a, b}.
#[test]
fn e7a_section5_inertia() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "p."), &mut Inertia).unwrap();
    assert_eq!(out.database.to_string(), "{a, b, p}");
    assert_eq!(out.blocked_display(), vec!["(r2)", "(r5)"]);
    assert_eq!(out.interpretation.display(), "{+a, +b, p, -q}");
    assert_eq!(out.stats.restarts, 2);
    // The trace reproduces the paper's two inconsistencies on q.
    let rendered = out.trace.render();
    assert_eq!(rendered.matches("inconsistent: q").count(), 2, "{rendered}");
}

/// E7b — the same program under rule priorities (ri has priority i).
///
/// Paper: blocked {r2} then {r4}; final database {p, a, b, q}.
#[test]
fn e7b_section5_priority() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "@priority(1) r1: p -> +a.
         @priority(2) r2: p -> +q.
         @priority(3) r3: a -> +b.
         @priority(4) r4: a -> -q.
         @priority(5) r5: b -> +q.",
        &vocab,
    );
    let out = eng
        .park(&db(&vocab, "p."), &mut RulePriority::new())
        .unwrap();
    assert_eq!(out.database.to_string(), "{a, b, p, q}");
    assert_eq!(out.blocked_display(), vec!["(r2)", "(r4)"]);
    assert_eq!(out.stats.restarts, 2);
}

/// E8 — Section 5, the counterintuitive-inertia example on D = {a}.
///
/// Paper: "The final result is {a} and differs from the expected — more
/// intuitive — {a, +d}", with r2 (a -> +d) then r1 (a -> +b) blocked.
#[test]
fn e8_counterintuitive_inertia() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "a."), &mut Inertia).unwrap();
    assert_eq!(out.database.to_string(), "{a}");
    assert_eq!(out.blocked_display(), vec!["(r1)", "(r2)"]);
    assert_eq!(out.stats.restarts, 2);
}

/// E7a again, at the step level: the sequence of consistent interpretations
/// matches the paper's listing (1)–(7) across the three runs.
#[test]
fn e7a_step_listing_matches_paper() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "p."), &mut Inertia).unwrap();
    let steps: Vec<(u64, u64, String)> = out
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            park::engine::TraceEvent::Step {
                run, step, interp, ..
            } => Some((*run, *step, interp.clone())),
            _ => None,
        })
        .collect();
    // Paper listing (our display sorts by atom):
    //  run 1: (1) {p, +a, +q}            — paper's (1)
    //  run 2: (3) {p, +a} (4) {p, +a, +b, -q}   — paper's (3), (4)
    //  run 3: (6) {p, +a} (7) {p, +a, -q, +b}   — paper's (6), (7)
    assert_eq!(
        steps,
        vec![
            (1, 1, "{+a, p, +q}".to_string()),
            (2, 1, "{+a, p}".to_string()),
            (2, 2, "{+a, +b, p, -q}".to_string()),
            (3, 1, "{+a, p}".to_string()),
            (3, 2, "{+a, +b, p, -q}".to_string()),
        ]
    );
    // The paper's inconsistent states (2) and (5) appear as detections.
    let inconsistencies: Vec<u64> = out
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            park::engine::TraceEvent::Inconsistent { run, .. } => Some(*run),
            _ => None,
        })
        .collect();
    assert_eq!(inconsistencies, vec![1, 2]);
}

/// E2's first run reproduces the paper's intermediate listing for P2:
/// `{p, +q, -a, +r}` after step 1 (r, whose reason `¬a` is valid, appears
/// immediately alongside q's insertion and a's deletion).
#[test]
fn e2_first_run_steps() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "p."), &mut Inertia).unwrap();
    let first_step = out.trace.events().iter().find_map(|e| match e {
        park::engine::TraceEvent::Step {
            run: 1,
            step: 1,
            interp,
            ..
        } => Some(interp.clone()),
        _ => None,
    });
    assert_eq!(first_step.as_deref(), Some("{-a, p, +q, +r}"));
    // Final fixpoint: {p, +q, -a, +r} — s never appears.
    assert_eq!(out.interpretation.display(), "{-a, p, +q, +r}");
}

/// A deliberately erratic SELECT (alternating answers for the same atom)
/// still yields a terminating, consistent run — the engine's guarantees do
/// not depend on the policy being sensible.
#[test]
fn erratic_policy_failure_injection() {
    struct Erratic(u32);
    impl ConflictResolver for Erratic {
        fn name(&self) -> &str {
            "erratic"
        }
        fn select(&mut self, _: &SelectContext<'_>, _: &Conflict) -> Result<Resolution, String> {
            self.0 += 1;
            Ok(if self.0 % 2 == 1 {
                Resolution::Insert
            } else {
                Resolution::Delete
            })
        }
    }
    let vocab = Vocabulary::new();
    let eng = engine(
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.
         r6: q -> +z. r7: b -> -z.",
        &vocab,
    );
    let out = eng.park(&db(&vocab, "p."), &mut Erratic(0)).unwrap();
    assert!(out.interpretation.is_consistent());
    // Determinism given the same (stateful) policy sequence.
    let out2 = eng.park(&db(&vocab, "p."), &mut Erratic(0)).unwrap();
    assert!(out.database.same_facts(&out2.database));
}

/// The Section 2 motivating rule as a smoke test of the textual syntax the
/// paper uses (`emp(X), ¬active(X), payroll(X, S) → -payroll(X, S)`).
#[test]
fn section2_motivating_rule() {
    let vocab = Vocabulary::new();
    let eng = engine(
        "emp(X), !active(X), payroll(X, Salary) -> -payroll(X, Salary).",
        &vocab,
    );
    let d = db(
        &vocab,
        "emp(ann). emp(bob). active(ann). payroll(ann, 50000). payroll(bob, 40000).",
    );
    let out = eng.park(&d, &mut Inertia).unwrap();
    assert_eq!(
        out.database.sorted_display(),
        vec!["active(ann)", "emp(ann)", "emp(bob)", "payroll(ann, 50000)"]
    );
}

/// The conflicts(P, I) example from Section 4.2:
/// P = {p(x) -> +q(x), p(x) -> -q(x)}, I = {p(a)}.
#[test]
fn section42_conflicts_example() {
    use park::engine::{collect_conflicts, fire_all, BlockedSet, IInterpretation, Provenance};
    let vocab = Vocabulary::new();
    let program = park::engine::CompiledProgram::compile(
        std::sync::Arc::clone(&vocab),
        &parse_program("r1: p(X) -> +q(X). r2: p(X) -> -q(X).").unwrap(),
    )
    .unwrap();
    let interp = IInterpretation::from_database(db(&vocab, "p(a)."));
    let fired = fire_all(&program, &BlockedSet::new(), &interp);
    let conflicts = collect_conflicts(&vocab, &fired, &Provenance::new());
    assert_eq!(conflicts.len(), 1);
    assert_eq!(
        conflicts[0].display(&program),
        "(q(a), {(r1, [X <- a])}, {(r2, [X <- a])})"
    );
}
