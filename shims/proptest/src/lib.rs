//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this workspace-local
//! crate re-implements the slice of the proptest API the repo's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy`](strategy::Strategy) with `prop_map`, integer-range / tuple /
//! string-pattern strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`sample::subsequence`], `prop::bool::ANY`, `any::<T>()`, [`prop_oneof!`],
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (hashed test path), there is **no shrinking** (failures
//! report the raw inputs), and string "regex" strategies only honor a
//! trailing `{lo,hi}` repetition count over a fixed unicode pool — enough
//! for no-panic fuzzing.

#![forbid(unsafe_code)]

/// Runner configuration (`cases` = number of random cases per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case generation and the per-property driver loop.
pub mod test_runner {
    use super::ProptestConfig;

    /// xoshiro256** generator seeded from the test path, so each property
    /// sees the same case sequence on every run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a + SplitMix64).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)` (rejection sampling; `span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty range in strategy");
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Debug rendering of one case's generated inputs, for failure reports.
    pub struct CaseInputs(pub String);

    /// Drive `config.cases` random cases of one property. `mk` generates the
    /// inputs (returning their rendering) plus the body to run; a body
    /// returning `Err` (a failed `prop_assert!`) or panicking fails the test
    /// with the offending inputs echoed.
    pub fn run_cases<F, C>(config: ProptestConfig, name: &str, mut mk: F)
    where
        F: FnMut(&mut TestRng) -> (CaseInputs, C),
        C: FnOnce() -> Result<(), String>,
    {
        let mut rng = TestRng::from_name(name);
        for case in 0..config.cases {
            let (inputs, body) = mk(&mut rng);
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
                Ok(Ok(())) => {}
                Ok(Err(msg)) => panic!(
                    "[{name}] property failed at case {case}/{total}: {msg}\n  inputs: {inputs}",
                    total = config.cases,
                    inputs = inputs.0,
                ),
                Err(payload) => {
                    eprintln!(
                        "[{name}] body panicked at case {case}/{total}\n  inputs: {inputs}",
                        total = config.cases,
                        inputs = inputs.0,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// The strategy abstraction: a recipe for generating random values.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random `Value`s. Unlike upstream proptest there is no
    /// value tree / shrinking; `Value` is the produced type directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for heterogeneous unions ([`crate::prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among boxed alternatives (from [`crate::prop_oneof!`]).
    pub struct Union<V> {
        alternatives: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from a non-empty alternative list.
        pub fn new(alternatives: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
            Union { alternatives }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alternatives.len() as u64) as usize;
            self.alternatives[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Fixed pool used by string-pattern strategies: ASCII printables plus
    /// whitespace, escapes, and multibyte characters to stress the lexer.
    const CHAR_POOL: &[char] = &[
        'a', 'b', 'c', 'p', 'q', 'r', 'X', 'Y', 'Z', '0', '1', '9', '_', '(', ')', ',', '.', '-',
        '>', '+', '!', '<', '=', '"', '\\', '%', ' ', '\t', '\n', '\'', ':', ';', '@', '#', '{',
        '}', '[', ']', '*', '/', '~', '^', '&', '|', '?', '$', '`', 'é', 'λ', 'Ж', '中', '🦀',
        '\u{7f}', '\u{a0}', '\u{2028}',
    ];

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            // Honor a trailing `{lo,hi}` repetition; the class prefix (e.g.
            // `\PC`) just selects from the fixed pool.
            let (lo, hi) = match self.rfind('{').and_then(|open| {
                let body = self.get(open + 1..self.len().checked_sub(1)?)?;
                let (a, b) = body.split_once(',')?;
                Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
            }) {
                Some(bounds) if self.ends_with('}') => bounds,
                _ => (0usize, 16usize),
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| CHAR_POOL[rng.below(CHAR_POOL.len() as u64) as usize])
                .collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`], returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest permitted length.
        pub lo: usize,
        /// Largest permitted length (inclusive).
        pub hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`select`, `subsequence`).
pub mod sample {
    use super::collection::SizeRange;
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniformly select one element of `options` (cloned per case).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty vec");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// A random subsequence of `source` (order preserved) whose length falls
    /// in `size` (clamped to the source length).
    pub fn subsequence<T: Clone>(source: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            source,
            size: size.into(),
        }
    }

    /// Strategy returned by [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        source: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.source.len();
            let clamped = SizeRange {
                lo: self.size.lo.min(n),
                hi: self.size.hi.min(n),
            };
            let k = clamped.pick(rng);
            // Floyd's algorithm for k distinct indices, then sort to keep
            // the source order.
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            for j in n - k..n {
                let t = rng.below((j + 1) as u64) as usize;
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.source[i].clone()).collect()
        }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use super::collection;
    pub use super::sample;

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// The uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        /// Uniform `true`/`false`.
        pub const ANY: AnyBool = AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::Strategy;
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(arg in strategy, ...)`
/// items; each becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                    let __inputs = $crate::test_runner::CaseInputs(format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    ));
                    (
                        __inputs,
                        move || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    )
                },
            );
        }
    )*};
}

/// Assert inside a property body; on failure the case's inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 0usize..10, b in -3i64..3, s in "\\PC{0,20}") {
            prop_assert!(a < 10);
            prop_assert!((-3..3).contains(&b));
            prop_assert!(s.chars().count() <= 20);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u8..3, prop::bool::ANY).prop_map(|(n, f)| (n, f)), 0..5),
            pick in prop::sample::select(vec!["x", "y"]),
            sub in crate::sample::subsequence(vec![1, 2, 3, 4], 0..=4usize),
            seed in any::<u64>(),
            mixed in prop_oneof![(0i64..2).prop_map(|x| x * 2), (5i64..6).prop_map(|x| x)],
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(pick == "x" || pick == "y");
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &sub, "subsequence keeps order");
            let _ = seed;
            prop_assert!(mixed == 0 || mixed == 2 || mixed == 5);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
