//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the API slice the bench targets use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros — as
//! a simple wall-clock harness: per benchmark it runs a warmup pass, then
//! `sample_size` timed samples, and prints the median per-iteration time.
//! There are no statistical comparisons, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group, e.g. `semi_naive/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value: `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value (the group name supplies the function part).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times one benchmark body; handed to the closure by `bench_function`.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Run `body` repeatedly, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warmup + calibration: find an iteration count that makes one
        // sample take a measurable slice of time.
        let start = Instant::now();
        std::hint::black_box(body());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let target_sample_secs = 0.01;
        self.iters_per_sample = ((target_sample_secs / once) as u64).clamp(1, 10_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(body());
            }
            let total = start.elapsed().as_secs_f64();
            self.samples.push(total / self.iters_per_sample as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        sorted[sorted.len() / 2] * 1e9
    }
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    let name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    println!(
        "bench {name:<50} median {:>12.1} ns ({} samples x {} iters)",
        b.median_ns(),
        b.samples.len(),
        b.iters_per_sample,
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, &mut f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), 100, &mut f);
        self
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut hits = 0u64;
        group.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, n| {
            hits += 1;
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.finish();
        assert_eq!(hits, 1);
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
