//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind the `parking_lot` API shape the workspace
//! uses: `read()` / `write()` / `lock()` return guards directly instead of
//! `Result`s. Poisoning is deliberately ignored (`into_inner` on the poison
//! error) to match `parking_lot`'s panic-transparent behavior.

#![forbid(unsafe_code)]

use std::sync;

/// Reader-writer lock with `parking_lot`-style guard-returning methods.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Mutex with `parking_lot`-style guard-returning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
    }

    #[test]
    fn concurrent_readers() {
        let lock = RwLock::new(7);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(*lock.read(), 7));
            }
        });
    }
}
