//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) slice of the `rand` 0.9 API the repo uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random_bool`],
//! and [`Rng::random_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid and fully deterministic per seed, which
//! is all the workload generators and randomized policies need. Streams are
//! *not* bit-compatible with upstream `rand`; seeds are documented as
//! reproducible only within a given engine version.

#![forbid(unsafe_code)]

/// Seedable pseudo-random generators.
pub mod rngs {
    /// Deterministic xoshiro256** generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64(rng: &mut rngs::StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The sampling interface, stand-in for `rand::Rng`.
pub trait Rng {
    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool;

    /// Uniform draw from a half-open integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(0..100);
            assert!((0..100).contains(&v));
            let w = rng.random_range(0..500u32);
            assert!(w < 500);
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
