//! Quickstart: the paper's Section 4.1 programs, end to end.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Demonstrates: parsing a rule program, evaluating `PARK(D, P)` under the
//! principle of inertia, reading the result and the trace, and how PARK
//! differs from naive conflict handling.

use park::baselines::naive_mark_eliminate;
use park::engine::{CompiledProgram, Engine, EngineOptions, Inertia};
use park::prelude::*;
use park::storage::UpdateSet;

fn main() {
    // ---------------------------------------------------------------
    // P1 (Section 4.1): a conflict resolved by the principle of inertia.
    // ---------------------------------------------------------------
    let vocab = Vocabulary::new();
    let p1 = parse_program(
        "r1: p -> +q.
         r2: p -> -a.
         r3: q -> +a.",
    )
    .expect("P1 parses");
    let engine =
        Engine::with_options(vocab.clone(), &p1, EngineOptions::traced()).expect("P1 compiles");
    let db = FactStore::from_source(vocab, "p.").expect("database parses");

    let out = engine.park(&db, &mut Inertia).expect("PARK terminates");
    println!("P1 on D = {{p}} under inertia:");
    println!("{}", out.trace.render());
    println!("result: {}\n", out.database);
    assert_eq!(out.database.to_string(), "{p, q}");

    // ---------------------------------------------------------------
    // P2 (Section 4.1): consequences of invalidated marks must vanish.
    // PARK gets {p, q, r}; the naive mark-and-eliminate strawman keeps
    // the bogus `s`.
    // ---------------------------------------------------------------
    let vocab = Vocabulary::new();
    let p2 = parse_program(
        "r1: p -> +q.
         r2: p -> -a.
         r3: q -> +a.
         r4: !a -> +r.
         r5: a -> +s.",
    )
    .expect("P2 parses");
    let engine = Engine::new(vocab.clone(), &p2).expect("P2 compiles");
    let db = FactStore::from_source(vocab.clone(), "p.").expect("database parses");

    let park_result = engine.park(&db, &mut Inertia).expect("PARK terminates");
    let compiled = CompiledProgram::compile(vocab, &p2).expect("P2 compiles");
    let naive_result = naive_mark_eliminate(&compiled, &db, &UpdateSet::empty(), 1 << 20)
        .expect("naive fixpoint terminates");

    println!("P2 on D = {{p}}:");
    println!("  PARK : {}", park_result.database);
    println!(
        "  naive: {}   <- keeps s, derived from the invalidated +a",
        naive_result.database
    );
    assert_eq!(park_result.database.to_string(), "{p, q, r}");
    assert_eq!(naive_result.database.to_string(), "{p, q, r, s}");

    // ---------------------------------------------------------------
    // Full ECA (Section 4.3): transaction updates trigger event rules.
    // ---------------------------------------------------------------
    let vocab = Vocabulary::new();
    let eca = parse_program(
        "r1: p(X) -> +q(X).
         r2: q(X) -> +r(X).
         r3: +r(X) -> -s(X).",
    )
    .expect("ECA program parses");
    let engine = Engine::new(vocab.clone(), &eca).expect("compiles");
    let db = FactStore::from_source(vocab.clone(), "p(a). s(a). s(b).").expect("parses");
    let updates = UpdateSet::from_source(&vocab, "+q(b).").expect("updates parse");

    let out = engine
        .run(&db, &updates, &mut Inertia)
        .expect("PARK terminates");
    println!("\nECA example: D = {{p(a), s(a), s(b)}}, U = {{+q(b)}}");
    println!("  PARK(D, P, U) = {}", out.database);
    assert_eq!(out.database.to_string(), "{p(a), q(a), q(b), r(a), r(b)}");

    println!("\nquickstart: all assertions passed");
}
