//! A long-running inventory monitor: comparison guards, the transactional
//! [`ActiveDatabase`] API, and journal-based recovery.
//!
//! Run with `cargo run --example inventory_monitor`.
//!
//! Stock levels live in the database as `stock(Item, Qty)`; the rules
//! classify low/overstocked items with guards and manage purchase orders,
//! cancelling them for discontinued items. Transactions stream in
//! (deliveries, sales recorded as stock replacement, discontinuations);
//! each one is journaled, and at the end the whole history is replayed
//! from the initial state to prove the journal reconstructs the database.

use park::db::ActiveDatabase;
use park::policies::RulePriority;
use park::prelude::*;

// Stock replacements expose both the old and the new quantity while the
// transaction is in flight (the old row is only *pending* deletion), so
// `classify` can still see the stale row. `unflag` therefore triggers on
// the *event* `+stock(I, Q)` — the freshly written quantity — and outranks
// `classify` (priority 2 vs 1) in the conflict that arises when a delivery
// lifts an item out of the low band: the fresher information wins. Under
// plain inertia `low(I) ∈ D` would be preserved instead; swapping the
// policy changes that decision and nothing else.
const RULES: &str = "
@priority(1) classify:  stock(I, Q), Q < 10 -> +low(I).
@priority(2) unflag:    low(I), +stock(I, Q), Q >= 10 -> -low(I).
@priority(1) restock:   low(I), !discontinued(I) -> +order(I).
@priority(2) stop:      discontinued(I) -> -order(I).
onorder:   +order(I) -> +po_open(I).
oncancel:  -order(I), po_open(I) -> -po_open(I).
surplus:   stock(I, Q), Q >= 90 -> +overstocked(I).
";

const INITIAL: &str = "
stock(widget, 50). stock(gadget, 8). stock(gizmo, 95). stock(doohickey, 3).
";

fn main() {
    let journal = std::env::temp_dir().join(format!("inventory-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let program = parse_program(RULES).expect("rules parse");
    let vocab = Vocabulary::new();
    let initial = FactStore::from_source(vocab, INITIAL).expect("initial stock parses");

    let mut db = ActiveDatabase::open(&program, initial.clone())
        .expect("rules compile")
        .with_journal(&journal);

    // Opening settle: classify the initial stock.
    let report = db.settle(&mut RulePriority::new()).expect("settle");
    println!("settle: +{:?}", report.added);
    assert!(report.added.contains(&"low(gadget)".to_string()));
    assert!(report.added.contains(&"order(doohickey)".to_string()));
    assert!(report.added.contains(&"overstocked(gizmo)".to_string()));

    // A delivery arrives for gadget: stock is replaced 8 -> 40.
    let report = db
        .transact_source(
            "-stock(gadget, 8). +stock(gadget, 40).",
            &mut RulePriority::new(),
        )
        .expect("delivery");
    println!("delivery: +{:?} -{:?}", report.added, report.removed);
    assert!(report.removed.contains(&"low(gadget)".to_string()));

    // The doohickey is discontinued: its open order must be cancelled.
    let report = db
        .transact_source("+discontinued(doohickey).", &mut RulePriority::new())
        .expect("disc");
    println!("discontinue: +{:?} -{:?}", report.added, report.removed);
    assert!(report.removed.contains(&"order(doohickey)".to_string()));
    assert!(report.removed.contains(&"po_open(doohickey)".to_string()));

    // A sale drops widget below the threshold.
    let report = db
        .transact_source(
            "-stock(widget, 50). +stock(widget, 4).",
            &mut RulePriority::new(),
        )
        .expect("sale");
    assert!(report.added.contains(&"order(widget)".to_string()));

    println!("\nfinal state:\n{}", db.state().to_source());

    // Crash-recovery drill: rebuild from the journal and compare.
    let replayed = ActiveDatabase::replay(&program, initial, &journal, &mut RulePriority::new())
        .expect("journal replays");
    assert_eq!(
        replayed.state().sorted_display(),
        db.state().sorted_display()
    );
    assert_eq!(replayed.transactions(), db.transactions());
    println!(
        "journal replay reconstructed the state ({} transactions) — OK",
        replayed.transactions()
    );

    let _ = std::fs::remove_file(&journal);
    println!("\ninventory_monitor: all assertions passed");
}
