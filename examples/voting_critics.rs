//! The Section 5 voting scheme: a panel of critics resolves inventory
//! conflicts by majority, with an interactive oracle as one of the critics.
//!
//! Run with `cargo run --example voting_critics`.
//!
//! The inventory workload conflicts on `order(I)` for items that are both
//! low on stock and discontinued. Three critics vote:
//!
//! 1. a *recency* critic that trusts the discontinuation list (votes
//!    delete for discontinued items),
//! 2. a *sales-floor* critic that always wants stock (votes insert),
//! 3. a scripted *human* critic (the paper: interactive resolution is the
//!    voting scheme with one human critic).

use park::engine::{Conflict, Engine, Inertia, Resolution, SelectContext};
use park::policies::{Critic, PolicyCritic, Voting};
use park::prelude::*;
use park::workloads::{inventory_database, inventory_program, InventoryConfig};

/// Votes `delete` whenever the item is on the discontinued list.
struct RecencyCritic;

impl Critic for RecencyCritic {
    fn name(&self) -> &str {
        "recency"
    }
    fn vote(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Resolution {
        let vocab = ctx.program.vocab();
        let disc = vocab.lookup_pred("discontinued");
        match disc {
            Some(p) if ctx.database.contains(p, &c.tuple) => Resolution::Delete,
            _ => Resolution::Insert,
        }
    }
}

fn main() {
    let config = InventoryConfig {
        items: 200,
        seed: 11,
        ..InventoryConfig::default()
    };
    let vocab = Vocabulary::new();
    let program = parse_program(&inventory_program()).expect("inventory rules parse");
    let engine = Engine::new(vocab.clone(), &program).expect("inventory rules compile");
    let db = FactStore::from_source(vocab, &inventory_database(&config)).expect("facts parse");

    // Count the contested items first (run under inertia just for stats).
    let probe = engine.park(&db, &mut Inertia).expect("terminates");
    let contested = probe.stats.conflicts_resolved;
    println!("inventory: {} facts, {contested} contested items", db.len());

    // The human answers the first few conflicts "insert", then defers to
    // silence — model them as a scripted critic that alternates.
    let mut human_answers = std::iter::repeat([Resolution::Insert, Resolution::Delete]).flatten();
    let human =
        move |_: &SelectContext<'_>, _: &Conflict| human_answers.next().expect("infinite script");

    let mut panel = Voting::new(
        vec![
            Box::new(RecencyCritic),
            Box::new(PolicyCritic::new(
                park::policies::PreferInsert,
                Resolution::Insert,
            )),
            Box::new(human),
        ],
        Resolution::Delete,
    );

    let out = engine.park(&db, &mut panel).expect("PARK terminates");
    let orders = out
        .database
        .sorted_display()
        .iter()
        .filter(|f| f.starts_with("order("))
        .count();
    let cancellation_notices = out
        .database
        .sorted_display()
        .iter()
        .filter(|f| f.starts_with("notify("))
        .count();
    println!("under the 3-critic panel:");
    println!("  {}", out.stats.summary());
    println!("  surviving orders      : {orders}");
    println!("  cancellation notices  : {cancellation_notices}");

    // Majority arithmetic: with the sales-floor critic always voting
    // insert, an order is cancelled only when BOTH the recency critic and
    // the human voted delete. The human alternates, so at most every other
    // contested item is cancelled.
    assert!(
        out.stats.conflicts_resolved >= contested,
        "same conflicts must be decided"
    );

    // Policy invariant from the rule set: a surviving order for item I
    // implies po_created(I) fired.
    let facts = out.database.sorted_display();
    for f in facts.iter().filter(|f| f.starts_with("order(")) {
        let item = &f[6..f.len() - 1];
        assert!(
            facts.contains(&format!("po_created({item})")),
            "order without purchase order for {item}"
        );
    }

    println!("\nvoting_critics: all assertions passed");
}
