//! Payroll triggers: the paper's Section 2 motivating domain, at scale,
//! with full event–condition–action rules and policy-dependent conflicts.
//!
//! Run with `cargo run --example payroll`.
//!
//! A generated HR database (employees, activity flags, payroll records,
//! bonus eligibility, compliance flags) is hit by a transaction that
//! deactivates a batch of employees. Event rules (`-active(X) -> ...`)
//! cascade the offboarding; a grant/deny pair conflicts on bonuses, and
//! three different SELECT policies give three defensible outcomes from the
//! same rule set — the paper's "flexible conflict resolution" requirement
//! made concrete.

use park::engine::{Engine, Inertia};
use park::policies::{PreferInsert, Recording, RulePriority};
use park::prelude::*;
use park::workloads::{payroll_database, payroll_program, PayrollConfig};

fn count_prefix(store: &FactStore, prefix: &str) -> usize {
    store
        .sorted_display()
        .iter()
        .filter(|f| f.starts_with(prefix))
        .count()
}

fn main() {
    let config = PayrollConfig {
        employees: 500,
        seed: 2026,
        ..PayrollConfig::default()
    };
    let (facts, tx) = payroll_database(&config);

    let vocab = Vocabulary::new();
    let program = parse_program(&payroll_program()).expect("payroll rules parse");
    let engine = Engine::new(vocab.clone(), &program).expect("payroll rules compile");
    let db = FactStore::from_source(vocab.clone(), &facts).expect("facts parse");
    let updates = UpdateSet::from_source(&vocab, &tx).expect("updates parse");

    println!(
        "payroll: {} employees, {} facts, {} deactivations in the transaction",
        config.employees,
        db.len(),
        updates.len()
    );

    // --- inertia ---------------------------------------------------
    let mut inertia = Recording::new(Inertia);
    let out = engine
        .run(&db, &updates, &mut inertia)
        .expect("PARK terminates");
    println!("\nunder inertia:");
    println!("  {}", out.stats.summary());
    println!("  offboarded: {}", count_prefix(&out.database, "offboard("));
    println!("  audit rows: {}", count_prefix(&out.database, "audit("));
    println!("  bonuses   : {}", count_prefix(&out.database, "bonus("));
    println!("  bonus conflicts resolved: {}", inertia.decisions().len());

    // Offboarding must have removed the payroll rows of every deactivated
    // employee.
    for u in updates.iter() {
        let atom = vocab.display_fact(u.pred, &u.tuple); // active(eN)
        let emp = &atom[7..atom.len() - 1];
        assert!(
            !out.database
                .sorted_display()
                .iter()
                .any(|f| f.starts_with(&format!("payroll({emp},"))),
            "payroll rows of {emp} must be gone"
        );
    }

    // --- rule priority ----------------------------------------------
    let out_prio = engine
        .run(&db, &updates, &mut RulePriority::new())
        .expect("terminates");
    println!("\nunder rule priority (deny @2 > grant @1):");
    println!(
        "  bonuses   : {}",
        count_prefix(&out_prio.database, "bonus(")
    );

    // --- prefer-insert ----------------------------------------------
    let out_ins = engine
        .run(&db, &updates, &mut PreferInsert)
        .expect("terminates");
    println!("\nunder prefer-insert:");
    println!(
        "  bonuses   : {}",
        count_prefix(&out_ins.database, "bonus(")
    );

    // Inertia and priority agree here (both deny flagged bonuses);
    // prefer-insert grants strictly more bonuses.
    assert_eq!(
        count_prefix(&out.database, "bonus("),
        count_prefix(&out_prio.database, "bonus(")
    );
    assert!(
        count_prefix(&out_ins.database, "bonus(") >= count_prefix(&out.database, "bonus("),
        "prefer-insert can only grant more"
    );

    println!("\npayroll: all assertions passed");
}
