//! The Section 4.2 irreflexive-graph construction with a custom SELECT
//! policy, reproducing the paper's worked fixpoint and scaling it up.
//!
//! Run with `cargo run --example graph_maintenance`.
//!
//! The program builds a graph `q` over nodes `p` that is irreflexive and
//! free of transitively-implied arcs. Which arcs survive is entirely the
//! conflict-resolution policy's choice; the paper picks a SELECT that
//! blocks the diagonal and the a–c connections, yielding the 4-cycle
//! `{q(a,b), q(b,a), q(b,c), q(c,b)}`. A custom [`ConflictResolver`]
//! implements exactly that choice here — custom policies are ~20 lines.

use park::engine::{Conflict, ConflictResolver, Engine, Resolution, SelectContext};
use park::prelude::*;
use park::workloads::{irreflexive_graph_program, nodes_database};

/// The paper's SELECT for the Section 4.2 example: delete `q(x, x)` and the
/// arcs connecting the first and last node; insert (keep) everything else.
struct PaperSelect {
    first: String,
    last: String,
}

impl ConflictResolver for PaperSelect {
    fn name(&self) -> &str {
        "paper-4.2"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let x = ctx.program.vocab().constant(c.tuple.get(0)).to_string();
        let y = ctx.program.vocab().constant(c.tuple.get(1)).to_string();
        let diagonal = x == y;
        let connects_ends =
            (x == self.first && y == self.last) || (x == self.last && y == self.first);
        if diagonal || connects_ends {
            Ok(Resolution::Delete) // block the r1 instance inserting it
        } else {
            Ok(Resolution::Insert) // block the r2/r3 instances deleting it
        }
    }
}

fn edges(store: &FactStore) -> Vec<String> {
    store
        .sorted_display()
        .into_iter()
        .filter(|f| f.starts_with("q("))
        .collect()
}

fn main() {
    // ---- the paper's n = 3 instance (constants n0, n1, n2) ----------
    let vocab = Vocabulary::new();
    let program = parse_program(&irreflexive_graph_program()).expect("program parses");
    let engine = Engine::new(vocab.clone(), &program).expect("program compiles");
    let db = FactStore::from_source(vocab, &nodes_database(3)).expect("nodes parse");

    let mut select = PaperSelect {
        first: "n0".into(),
        last: "n2".into(),
    };
    let out = engine.park(&db, &mut select).expect("PARK terminates");
    println!("n = 3 with the paper's SELECT:");
    println!("  kept arcs: {:?}", edges(&out.database));
    println!("  blocked  : {:?}", out.blocked_display());
    println!("  {}", out.stats.summary());
    assert_eq!(
        edges(&out.database),
        vec!["q(n0, n1)", "q(n1, n0)", "q(n1, n2)", "q(n2, n1)"],
        "the paper's 4-cycle"
    );
    assert_eq!(
        out.stats.restarts, 1,
        "one conflict-resolution restart, as in the paper"
    );

    // ---- the same program at n = 12 ---------------------------------
    // The same policy generalizes: keep the "path" arcs between adjacent
    // indices, drop everything implied by transitivity. Any SELECT gives
    // *some* legal irreflexive transitively-reduced graph; here we keep
    // arcs between nodes whose indices differ by exactly 1.
    struct Adjacent;
    impl ConflictResolver for Adjacent {
        fn name(&self) -> &str {
            "adjacent-only"
        }
        fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
            let idx = |v: park::storage::Value| -> i64 {
                ctx.program
                    .vocab()
                    .constant(v)
                    .to_string()
                    .trim_start_matches('n')
                    .parse()
                    .expect("node constants are n<i>")
            };
            let dx = (idx(c.tuple.get(0)) - idx(c.tuple.get(1))).abs();
            Ok(if dx == 1 {
                Resolution::Insert
            } else {
                Resolution::Delete
            })
        }
    }

    let n = 12;
    let vocab = Vocabulary::new();
    let engine = Engine::new(vocab.clone(), &program).expect("compiles");
    let db = FactStore::from_source(vocab, &nodes_database(n)).expect("nodes parse");
    let out = engine.park(&db, &mut Adjacent).expect("PARK terminates");
    let kept = edges(&out.database);
    println!("\nn = {n} with the adjacent-only SELECT:");
    println!("  kept {} arcs out of {} candidates", kept.len(), n * n);
    println!("  {}", out.stats.summary());
    assert_eq!(kept.len(), 2 * (n - 1), "a bidirectional path");

    // Invariants of the rule set, independent of the policy: the result is
    // irreflexive and contains no arc implied by transitivity.
    for e in &kept {
        let inner = &e[2..e.len() - 1];
        let (x, y) = inner.split_once(", ").expect("binary q");
        assert_ne!(x, y, "irreflexive");
    }
    println!("\ngraph_maintenance: all assertions passed");
}
